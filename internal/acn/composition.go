// Package acn implements the paper's core contribution: the Automated
// Closed Nesting framework. It consumes the static module's dependency model
// (internal/unitgraph) and the dynamic module's contention levels
// (internal/contention), periodically recomposes each transaction's Block
// sequence with the three-step algorithm of §V-C3, and executes the current
// sequence as closed-nested transactions on the QR-CN runtime
// (internal/dtm).
package acn

import (
	"fmt"
	"sort"
	"strings"

	"qracn/internal/unitgraph"
)

// BlockSpec is one Block of a composition: a set of UnitBlocks executed as a
// single closed-nested transaction.
type BlockSpec struct {
	// AnchorIDs are the UnitBlocks merged into this Block.
	AnchorIDs []int
	// StmtIdx are the statements the Block executes, ascending (original
	// program order within the Block).
	StmtIdx []int
}

// Composition is an executable Block sequence for one program.
type Composition struct {
	Blocks []BlockSpec
}

// String renders the composition compactly, e.g. "[0 2][1 3]".
func (c *Composition) String() string {
	var b strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&b, "%v", blk.AnchorIDs)
	}
	return b.String()
}

// NumBlocks returns the number of closed-nested transactions per execution.
func (c *Composition) NumBlocks() int { return len(c.Blocks) }

// build assembles a composition from a host assignment and an ordered
// grouping of anchors. Floating statements (pure parameter computations)
// join the first Block so their values exist before any consumer runs.
func build(an *unitgraph.Analysis, hosts []int, groups [][]int) *Composition {
	members := an.BlockMembers(hosts)
	comp := &Composition{Blocks: make([]BlockSpec, 0, len(groups))}
	for gi, g := range groups {
		spec := BlockSpec{AnchorIDs: append([]int(nil), g...)}
		if gi == 0 {
			spec.StmtIdx = append(spec.StmtIdx, an.FloatingStmts()...)
		}
		for _, a := range g {
			spec.StmtIdx = append(spec.StmtIdx, members[a]...)
		}
		sort.Ints(spec.StmtIdx)
		comp.Blocks = append(comp.Blocks, spec)
	}
	return comp
}

// Flat returns the flat-nesting composition: the whole program as one block
// (QR-DTM behaviour — no partial rollback).
func Flat(an *unitgraph.Analysis) *Composition {
	all := make([]int, an.NumAnchors)
	for i := range all {
		all[i] = i
	}
	return build(an, an.StaticHosts(), [][]int{all})
}

// Static returns ACN's initial composition (§V-C1): one Block per UnitBlock
// in dependency order, local operations attached per the static analysis.
// UnitBlocks whose precedence constraints are circular (operations on one
// object attached across blocks in contradictory order) are contracted into
// a single Block. This is what QR-ACN runs before the first contention
// observation.
func Static(an *unitgraph.Analysis) *Composition {
	hosts := an.StaticHosts()
	return build(an, hosts, baseGroups(an, hosts))
}

// baseGroups returns the finest sound Block partition for a host
// assignment: the strongly connected components of the block-precedence
// graph, in topological order.
func baseGroups(an *unitgraph.Analysis, hosts []int) [][]int {
	return unitgraph.SCC(an.NumAnchors, an.BlockEdges(hosts))
}

// Manual builds the composition a programmer would write by hand (the QR-CN
// baseline): groups of UnitBlock IDs in the intended execution order, local
// operations attached per the static analysis. It verifies that every
// UnitBlock appears exactly once and that the order respects the dependency
// model.
func Manual(an *unitgraph.Analysis, groups [][]int) (*Composition, error) {
	seen := make(map[int]bool)
	groupOf := make(map[int]int)
	for gi, g := range groups {
		for _, a := range g {
			if a < 0 || a >= an.NumAnchors {
				return nil, fmt.Errorf("acn: manual composition names unknown UnitBlock %d", a)
			}
			if seen[a] {
				return nil, fmt.Errorf("acn: manual composition lists UnitBlock %d twice", a)
			}
			seen[a] = true
			groupOf[a] = gi
		}
	}
	if len(seen) != an.NumAnchors {
		return nil, fmt.Errorf("acn: manual composition covers %d of %d UnitBlocks", len(seen), an.NumAnchors)
	}
	hosts := an.StaticHosts()
	for u, vs := range an.BlockEdges(hosts) {
		for v := range vs {
			if groupOf[u] > groupOf[v] {
				return nil, fmt.Errorf("acn: manual composition violates dependency %d -> %d", u, v)
			}
		}
	}
	return build(an, hosts, groups), nil
}
