package acn_test

import (
	"context"
	"testing"
	"time"

	"qracn/internal/acn"
	"qracn/internal/cluster"
	"qracn/internal/dtm"
	"qracn/internal/store"
	"qracn/internal/txir"
	"qracn/internal/unitgraph"
)

// TestPrefetchCollapsesBlockReadsToOneRound is the headline property of the
// batched pipeline: a Block whose k first-access reads are statically known
// at Block entry costs exactly one quorum round, not k.
func TestPrefetchCollapsesBlockReadsToOneRound(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 4, 1000)
	rt := c.Runtime(1, dtm.Config{Seed: 7})
	// Flat composition: all four anchors (two branch reads, two account
	// reads) land in one Block, and all have parameter-only refs.
	exec := acn.NewExecutor(rt, an, acn.Flat(an))

	before := rt.Metrics().Snapshot()
	if err := exec.Execute(context.Background(), transferParams(0, 1, 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
	after := rt.Metrics().Snapshot()
	if n := after.RemoteReads - before.RemoteReads; n != 1 {
		t.Fatalf("RemoteReads = %d for a 4-read Block, want 1", n)
	}
	if n := after.BatchReads - before.BatchReads; n != 1 {
		t.Fatalf("BatchReads = %d, want 1", n)
	}
	if n := after.PrefetchedObjects - before.PrefetchedObjects; n != 4 {
		t.Fatalf("PrefetchedObjects = %d, want 4", n)
	}

	// The same invocation with prefetch disabled pays one round per read.
	exec.SetPrefetch(false)
	mid := rt.Metrics().Snapshot()
	if err := exec.Execute(context.Background(), transferParams(0, 1, 2, 3, 5)); err != nil {
		t.Fatal(err)
	}
	final := rt.Metrics().Snapshot()
	if n := final.RemoteReads - mid.RemoteReads; n != 4 {
		t.Fatalf("RemoteReads = %d with prefetch disabled, want 4", n)
	}
	if n := final.BatchReads - mid.BatchReads; n != 0 {
		t.Fatalf("BatchReads = %d with prefetch disabled, want 0", n)
	}

	bTot, aTot := totalMoney(t, rt, 2, 4)
	if bTot != 2000 || aTot != 4000 {
		t.Fatalf("money not conserved: branches=%d accounts=%d", bTot, aTot)
	}
}

// TestPrefetchPerBlockRounds checks the per-Block accounting under a
// decomposed composition: a two-anchor Block batches, single-anchor Blocks
// read plainly.
func TestPrefetchPerBlockRounds(t *testing.T) {
	an := analyze(t)
	comp, err := acn.Manual(an, [][]int{{0, 1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 4, 1000)
	rt := c.Runtime(1, dtm.Config{Seed: 7})
	exec := acn.NewExecutor(rt, an, comp)

	before := rt.Metrics().Snapshot()
	if err := exec.Execute(context.Background(), transferParams(0, 1, 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
	after := rt.Metrics().Snapshot()
	// Block {0,1}: one batched round. Blocks {2} and {3}: one plain round
	// each (a single-object batch would gain nothing).
	if n := after.RemoteReads - before.RemoteReads; n != 3 {
		t.Fatalf("RemoteReads = %d, want 3 (1 batched + 2 plain)", n)
	}
	if n := after.BatchReads - before.BatchReads; n != 1 {
		t.Fatalf("BatchReads = %d, want 1", n)
	}
	if n := after.PrefetchedObjects - before.PrefetchedObjects; n != 2 {
		t.Fatalf("PrefetchedObjects = %d, want 2", n)
	}
}

// chainProgram has a read whose object reference depends on a value computed
// inside the transaction: that anchor must be excluded from the prefetch set
// while the independent anchors still batch.
func chainProgram() *txir.Program {
	p := txir.NewProgram("chain")
	p.ReadP("dir", "d", "slot") // anchor 0: parameter ref
	p.Local(func(e *txir.Env) error {
		e.SetInt64("k", e.GetInt64("d")+1)
		return nil
	}, []txir.Var{"d"}, []txir.Var{"k"})
	p.Read("obj", "k", func(e *txir.Env) store.ObjectID { // anchor 1: depends on k
		return store.ID("obj", e.GetInt64("k"))
	}, "v", "k")
	p.ReadP("other", "o", "slot") // anchor 2: parameter ref
	return p
}

func TestPrefetchSkipsDataDependentRefs(t *testing.T) {
	an, err := unitgraph.Analyze(chainProgram())
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	c.Seed(map[store.ObjectID]store.Value{
		store.ID("dir", 0):         store.Int64(41),
		store.ID("obj", int64(42)): store.Int64(7),
		store.ID("other", 0):       store.Int64(9),
	})
	rt := c.Runtime(1, dtm.Config{Seed: 3})
	exec := acn.NewExecutor(rt, an, acn.Flat(an))

	before := rt.Metrics().Snapshot()
	if err := exec.Execute(context.Background(), map[string]any{"slot": 0}); err != nil {
		t.Fatal(err)
	}
	after := rt.Metrics().Snapshot()
	// Anchors 0 and 2 batch into one round; anchor 1 (k is computed inside
	// the Block) pays its own round.
	if n := after.RemoteReads - before.RemoteReads; n != 2 {
		t.Fatalf("RemoteReads = %d, want 2 (1 batched + 1 dependent)", n)
	}
	if n := after.PrefetchedObjects - before.PrefetchedObjects; n != 2 {
		t.Fatalf("PrefetchedObjects = %d, want 2", n)
	}
}

// TestPrefetchOverTCP runs the one-round property end to end across real
// TCP connections: batch framing, the stream codec, and concurrent
// server-side sub-dispatch all sit on the path.
func TestPrefetchOverTCP(t *testing.T) {
	an := analyze(t)
	tc, err := cluster.NewTCP(cluster.TCPConfig{Servers: 4, StatsWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	objs := map[store.ObjectID]store.Value{}
	for i := 0; i < 2; i++ {
		objs[store.ID("branch", i)] = store.Int64(1000)
	}
	for i := 0; i < 4; i++ {
		objs[store.ID("account", i)] = store.Int64(1000)
	}
	tc.Seed(objs)

	rt := tc.Runtime(1, dtm.Config{Seed: 7})
	exec := acn.NewExecutor(rt, an, acn.Flat(an))

	before := rt.Metrics().Snapshot()
	if err := exec.Execute(context.Background(), transferParams(0, 1, 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
	after := rt.Metrics().Snapshot()
	if n := after.RemoteReads - before.RemoteReads; n != 1 {
		t.Fatalf("RemoteReads = %d over TCP, want 1", n)
	}
	if n := after.PrefetchedObjects - before.PrefetchedObjects; n != 4 {
		t.Fatalf("PrefetchedObjects = %d, want 4", n)
	}

	// Semantics across the wire: balances moved and money conserved.
	var b0, b1 int64
	if err := rt.Atomic(context.Background(), func(tx *dtm.Tx) error {
		v0, err := tx.Read(store.ID("branch", 0))
		if err != nil {
			return err
		}
		v1, err := tx.Read(store.ID("branch", 1))
		if err != nil {
			return err
		}
		b0, b1 = store.AsInt64(v0), store.AsInt64(v1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if b0 != 995 || b1 != 1005 {
		t.Fatalf("branches = %d/%d, want 995/1005", b0, b1)
	}
}
