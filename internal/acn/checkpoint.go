package acn

import (
	"context"

	"qracn/internal/dtm"
	"qracn/internal/store"
	"qracn/internal/txir"
)

// maxCheckpointRollbacks bounds partial rollbacks within one top-level
// attempt before giving up and restarting the whole transaction.
const maxCheckpointRollbacks = 1000

// checkpointState is one saved execution point: the statement to resume
// from, the transaction's private state, and a deep copy of the variables.
type checkpointState struct {
	stmt int
	tx   *dtm.Checkpoint
	vars map[txir.Var]store.Value
}

// ExecuteCheckpointed runs one invocation under checkpoint-based partial
// rollback — the alternative rollback mechanism the paper contrasts closed
// nesting with (§I, §III). Before every remote first access the executor
// saves the transaction's private state and the variable bindings; when an
// invalidation is detected, execution restores the latest checkpoint taken
// *before* the invalidated object's first read and resumes from there,
// instead of restarting the transaction.
//
// Finer-grained than closed nesting (any rollback point, not just
// sub-transaction boundaries), but every checkpoint pays a state-copy cost
// on the critical path — the overhead ACN's closed nesting avoids.
// Conflicts discovered at commit time still restart the transaction.
func (e *Executor) ExecuteCheckpointed(ctx context.Context, params map[string]any) error {
	rt := e.rt
	return rt.Atomic(ctx, func(tx *dtm.Tx) error {
		env := txir.NewEnv(params)
		var cps []checkpointState
		rollbacks := 0
		i := 0
		for i < len(e.an.Stmts) {
			info := &e.an.Stmts[i]
			if info.IsAnchor {
				cps = append(cps, checkpointState{
					stmt: i,
					tx:   tx.Checkpoint(),
					vars: env.SnapshotVars(),
				})
			}
			err := e.runStmt(tx, env, i)
			if err == nil {
				i++
				continue
			}
			ae, ok := dtm.AsAbort(err)
			if !ok || len(ae.Invalid) == 0 || len(cps) == 0 {
				return err
			}
			if rollbacks++; rollbacks > maxCheckpointRollbacks {
				return err
			}
			// Roll back to the latest checkpoint preceding the earliest
			// invalidated read (an object not yet in the read-set — the
			// busy case — maps past the end, i.e. the current checkpoint).
			pos := len(e.an.Stmts)
			for _, id := range ae.Invalid {
				if p, ok := tx.ReadPosition(id); ok && p < pos {
					pos = p
				}
			}
			k := len(cps) - 1
			for k > 0 && cps[k].tx.ReadLen() > pos {
				k--
			}
			tx.Restore(cps[k].tx)
			env.RestoreVars(cps[k].vars)
			i = cps[k].stmt
			cps = cps[:k]
			rt.Metrics().CheckpointRollbacks.Add(1)
			if ae.Busy {
				if err := rt.Backoff(ctx, rollbacks); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
