package acn

import (
	"context"
	"sync/atomic"

	"qracn/internal/contention"
	"qracn/internal/dtm"
	"qracn/internal/store"
	"qracn/internal/txir"
	"qracn/internal/unitgraph"
)

// Executor is the executor engine (§V-B): it maintains the current Block
// sequence for one program and runs each invocation through it, one
// closed-nested transaction per Block. The sequence can be swapped at any
// time by the Algorithm module; in-flight transactions finish on the
// sequence they started with.
type Executor struct {
	rt       *dtm.Runtime
	an       *unitgraph.Analysis
	comp     atomic.Pointer[Composition]
	samplers []*contention.Sampler
}

// SamplerCapacity bounds how many distinct recent object IDs are remembered
// per UnitBlock for contention estimation.
const SamplerCapacity = 32

// NewExecutor creates an executor with the given initial composition.
func NewExecutor(rt *dtm.Runtime, an *unitgraph.Analysis, initial *Composition) *Executor {
	e := &Executor{rt: rt, an: an}
	e.comp.Store(initial)
	e.samplers = make([]*contention.Sampler, an.NumAnchors)
	for i := range e.samplers {
		e.samplers[i] = contention.NewSampler(SamplerCapacity)
	}
	return e
}

// Analysis exposes the dependency model the executor runs over.
func (e *Executor) Analysis() *unitgraph.Analysis { return e.an }

// Runtime exposes the underlying DTM runtime.
func (e *Executor) Runtime() *dtm.Runtime { return e.rt }

// Composition returns the current Block sequence.
func (e *Executor) Composition() *Composition { return e.comp.Load() }

// SetComposition atomically swaps the Block sequence (Algorithm module
// output → Executor input).
func (e *Executor) SetComposition(c *Composition) { e.comp.Store(c) }

// AnchorSample returns the recent accesses of UnitBlock id, duplicates
// included, so contention estimates weight objects by access frequency.
func (e *Executor) AnchorSample(id int) []store.ObjectID { return e.samplers[id].Recent() }

// SampledIDs returns the union of recent object IDs across all UnitBlocks —
// the object list the dynamic module requests contention levels for.
func (e *Executor) SampledIDs() []store.ObjectID {
	var out []store.ObjectID
	seen := make(map[store.ObjectID]bool)
	for _, s := range e.samplers {
		for _, id := range s.IDs() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Execute runs one invocation of the program with the given parameters.
// params must contain every randomness the transaction needs (drawn before
// the first attempt) so that retries re-execute deterministically.
func (e *Executor) Execute(ctx context.Context, params map[string]any) error {
	comp := e.comp.Load()
	return e.rt.Atomic(ctx, func(tx *dtm.Tx) error {
		env := txir.NewEnv(params)
		if len(comp.Blocks) == 1 {
			// A single block is flat nesting: no sub-transaction needed.
			return e.runStmts(tx, env, comp.Blocks[0].StmtIdx)
		}
		for i := range comp.Blocks {
			blk := &comp.Blocks[i]
			if err := tx.Sub(func(sub *dtm.Tx) error {
				return e.runStmts(sub, env, blk.StmtIdx)
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

func (e *Executor) runStmts(tx *dtm.Tx, env *txir.Env, stmtIdx []int) error {
	for _, idx := range stmtIdx {
		if err := e.runStmt(tx, env, idx); err != nil {
			return err
		}
	}
	return nil
}

func (e *Executor) runStmt(tx *dtm.Tx, env *txir.Env, idx int) error {
	info := &e.an.Stmts[idx]
	s := info.Stmt
	switch s.Kind {
	case txir.KindRead:
		id := s.Ref(env)
		if info.IsAnchor {
			e.samplers[info.AnchorID].Record(id)
		}
		v, err := tx.Read(id)
		if err != nil {
			return err
		}
		env.Set(s.Dst, v)
	case txir.KindWrite:
		id := s.Ref(env)
		if info.IsAnchor {
			e.samplers[info.AnchorID].Record(id)
		}
		if err := tx.Write(id, env.Get(s.Src)); err != nil {
			return err
		}
	case txir.KindLocal:
		if err := s.Fn(env); err != nil {
			return err
		}
	}
	return nil
}
