package acn

import (
	"context"
	"sync/atomic"

	"qracn/internal/contention"
	"qracn/internal/dtm"
	"qracn/internal/store"
	"qracn/internal/txir"
	"qracn/internal/unitgraph"
)

// Executor is the executor engine (§V-B): it maintains the current Block
// sequence for one program and runs each invocation through it, one
// closed-nested transaction per Block. The sequence can be swapped at any
// time by the Algorithm module; in-flight transactions finish on the
// sequence they started with.
//
// Before running a Block's body the executor prefetches the Block's
// statically-known remote access set — the anchor objects the UnitGraph
// proves the Block will touch and whose identities are already computable at
// Block entry — in one batched quorum round (Tx.Prefetch), collapsing k
// serial first-access round-trips into one.
type Executor struct {
	rt          *dtm.Runtime
	an          *unitgraph.Analysis
	comp        atomic.Pointer[compiled]
	noPrefetch  atomic.Bool
	samplers    []*contention.Sampler
	varDefsNote varDefs
}

// compiled pairs a composition with its prefetch plan so a sequence swap
// replaces both atomically.
type compiled struct {
	comp *Composition
	// prefetch[b] lists the anchor statement indices of Block b whose object
	// references are resolvable at Block entry (every RefVar defined by an
	// earlier Block).
	prefetch [][]int
	// anchors maps the DTM block index (0: top-level context, k: k-th Sub)
	// to the representative UnitBlock (first anchor ID) the block executes;
	// -1 for a top-level context that only drives Subs. Stamped on every
	// transaction via Tx.SetBlockMeta so forensic abort events can name the
	// decomposition unit a conflict hit.
	anchors []int
}

// varDefs maps each variable to the statement indices that define it, in
// program order. Computed once per executor (the program never changes).
type varDefs map[txir.Var][]int

// SamplerCapacity bounds how many distinct recent object IDs are remembered
// per UnitBlock for contention estimation.
const SamplerCapacity = 32

// NewExecutor creates an executor with the given initial composition.
func NewExecutor(rt *dtm.Runtime, an *unitgraph.Analysis, initial *Composition) *Executor {
	e := &Executor{rt: rt, an: an}
	e.varDefsNote = collectVarDefs(an)
	e.comp.Store(e.compile(initial))
	e.samplers = make([]*contention.Sampler, an.NumAnchors)
	for i := range e.samplers {
		e.samplers[i] = contention.NewSampler(SamplerCapacity)
	}
	return e
}

func collectVarDefs(an *unitgraph.Analysis) varDefs {
	defs := make(varDefs)
	for idx := range an.Stmts {
		for _, v := range an.Stmts[idx].Stmt.DefsVars() {
			defs[v] = append(defs[v], idx)
		}
	}
	return defs
}

// compile derives the prefetch plan for a composition: for every Block, the
// anchor statements whose Ref can be evaluated before the Block body runs.
// An anchor is prefetchable when every variable its Ref consults took its
// latest pre-anchor definition in an earlier Block — then the value sitting
// in the Env at Block entry is exactly the value the Ref would see at
// statement time. Anchors whose Ref depends only on invocation parameters
// (no RefVars) are always prefetchable.
func (e *Executor) compile(c *Composition) *compiled {
	blockOf := make(map[int]int, len(e.an.Stmts))
	for bi := range c.Blocks {
		for _, si := range c.Blocks[bi].StmtIdx {
			blockOf[si] = bi
		}
	}
	plan := make([][]int, len(c.Blocks))
	for bi := range c.Blocks {
		for _, si := range c.Blocks[bi].StmtIdx {
			info := &e.an.Stmts[si]
			if !info.IsAnchor {
				continue
			}
			if e.resolvableAtEntry(info.Stmt, si, bi, blockOf) {
				plan[bi] = append(plan[bi], si)
			}
		}
	}
	repr := func(b *BlockSpec) int {
		if len(b.AnchorIDs) > 0 {
			return b.AnchorIDs[0]
		}
		return -1
	}
	var anchors []int
	if len(c.Blocks) == 1 {
		// Flat nesting: the single block IS the top-level context.
		anchors = []int{repr(&c.Blocks[0])}
	} else {
		anchors = make([]int, 0, len(c.Blocks)+1)
		anchors = append(anchors, -1) // top-level context: drives the Subs
		for bi := range c.Blocks {
			anchors = append(anchors, repr(&c.Blocks[bi]))
		}
	}
	return &compiled{comp: c, prefetch: plan, anchors: anchors}
}

// resolvableAtEntry reports whether the statement's Ref sees the same
// variable values at Block entry as at statement time.
func (e *Executor) resolvableAtEntry(s *txir.Stmt, si, bi int, blockOf map[int]int) bool {
	for _, v := range s.RefVars {
		latest := -1
		for _, d := range e.varDefsNote[v] {
			if d < si {
				latest = d
			}
		}
		if latest < 0 {
			return false // defined nowhere earlier: Ref would see a zero value
		}
		if blockOf[latest] >= bi {
			return false // defined inside this Block (or later): not yet run
		}
	}
	return true
}

// Analysis exposes the dependency model the executor runs over.
func (e *Executor) Analysis() *unitgraph.Analysis { return e.an }

// Runtime exposes the underlying DTM runtime.
func (e *Executor) Runtime() *dtm.Runtime { return e.rt }

// Composition returns the current Block sequence.
func (e *Executor) Composition() *Composition { return e.comp.Load().comp }

// SetComposition atomically swaps the Block sequence (Algorithm module
// output → Executor input) and recompiles its prefetch plan.
func (e *Executor) SetComposition(c *Composition) { e.comp.Store(e.compile(c)) }

// SetPrefetch enables or disables the batched read prefetch (enabled by
// default; the toggle exists for A/B benchmarks).
func (e *Executor) SetPrefetch(enabled bool) { e.noPrefetch.Store(!enabled) }

// AnchorSample returns the recent accesses of UnitBlock id, duplicates
// included, so contention estimates weight objects by access frequency.
func (e *Executor) AnchorSample(id int) []store.ObjectID { return e.samplers[id].Recent() }

// SampledIDs returns the union of recent object IDs across all UnitBlocks —
// the object list the dynamic module requests contention levels for.
func (e *Executor) SampledIDs() []store.ObjectID {
	var out []store.ObjectID
	seen := make(map[store.ObjectID]bool)
	for _, s := range e.samplers {
		for _, id := range s.IDs() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Execute runs one invocation of the program with the given parameters.
// params must contain every randomness the transaction needs (drawn before
// the first attempt) so that retries re-execute deterministically.
func (e *Executor) Execute(ctx context.Context, params map[string]any) error {
	comp := e.comp.Load()
	return e.rt.Atomic(ctx, func(tx *dtm.Tx) error {
		tx.SetBlockMeta(len(comp.anchors), comp.anchors)
		env := txir.NewEnv(params)
		if len(comp.comp.Blocks) == 1 {
			// A single block is flat nesting: no sub-transaction needed.
			if err := e.prefetchBlock(tx, env, comp, 0); err != nil {
				return err
			}
			return e.runStmts(tx, env, comp.comp.Blocks[0].StmtIdx)
		}
		for i := range comp.comp.Blocks {
			blk := &comp.comp.Blocks[i]
			if err := tx.Sub(func(sub *dtm.Tx) error {
				if err := e.prefetchBlock(sub, env, comp, i); err != nil {
					return err
				}
				return e.runStmts(sub, env, blk.StmtIdx)
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// prefetchBlock fires one batched quorum round for the Block's resolvable
// remote access set. Single-object sets are skipped: one plain read costs
// the same round-trip without the batch envelope.
func (e *Executor) prefetchBlock(tx *dtm.Tx, env *txir.Env, comp *compiled, bi int) error {
	if e.noPrefetch.Load() || len(comp.prefetch[bi]) < 2 {
		return nil
	}
	ids := make([]store.ObjectID, 0, len(comp.prefetch[bi]))
	for _, si := range comp.prefetch[bi] {
		ids = append(ids, e.an.Stmts[si].Stmt.Ref(env))
	}
	return tx.Prefetch(ids...)
}

func (e *Executor) runStmts(tx *dtm.Tx, env *txir.Env, stmtIdx []int) error {
	for _, idx := range stmtIdx {
		if err := e.runStmt(tx, env, idx); err != nil {
			return err
		}
	}
	return nil
}

func (e *Executor) runStmt(tx *dtm.Tx, env *txir.Env, idx int) error {
	info := &e.an.Stmts[idx]
	s := info.Stmt
	switch s.Kind {
	case txir.KindRead:
		id := s.Ref(env)
		if info.IsAnchor {
			e.samplers[info.AnchorID].Record(id)
		}
		v, err := tx.Read(id)
		if err != nil {
			return err
		}
		env.Set(s.Dst, v)
	case txir.KindWrite:
		id := s.Ref(env)
		if info.IsAnchor {
			e.samplers[info.AnchorID].Record(id)
		}
		if err := tx.Write(id, env.Get(s.Src)); err != nil {
			return err
		}
	case txir.KindLocal:
		if err := s.Fn(env); err != nil {
			return err
		}
	}
	return nil
}
