package acn_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"qracn/internal/acn"
	"qracn/internal/cluster"
	"qracn/internal/dtm"
	"qracn/internal/quorum"
	"qracn/internal/store"
	"qracn/internal/txir"
	"qracn/internal/unitgraph"
)

// transferProgram is the Fig. 1 Bank transfer over parameterized branches
// and accounts.
func transferProgram() *txir.Program {
	p := txir.NewProgram("transfer")
	p.Local(func(e *txir.Env) error {
		e.SetInt64("amt", int64(e.ParamInt("amount")))
		return nil
	}, nil, []txir.Var{"amt"})
	p.ReadP("branch", "b1", "srcBranch") // anchor 0
	p.ReadP("branch", "b2", "dstBranch") // anchor 1
	p.Local(func(e *txir.Env) error {
		e.SetInt64("nb1", e.GetInt64("b1")-e.GetInt64("amt"))
		e.SetInt64("nb2", e.GetInt64("b2")+e.GetInt64("amt"))
		return nil
	}, []txir.Var{"b1", "b2", "amt"}, []txir.Var{"nb1", "nb2"})
	p.WriteP("branch", "nb1", "srcBranch")
	p.WriteP("branch", "nb2", "dstBranch")
	p.ReadP("account", "a1", "srcAcct") // anchor 2
	p.ReadP("account", "a2", "dstAcct") // anchor 3
	p.Local(func(e *txir.Env) error {
		e.SetInt64("na1", e.GetInt64("a1")-e.GetInt64("amt"))
		e.SetInt64("na2", e.GetInt64("a2")+e.GetInt64("amt"))
		return nil
	}, []txir.Var{"a1", "a2", "amt"}, []txir.Var{"na1", "na2"})
	p.WriteP("account", "na1", "srcAcct")
	p.WriteP("account", "na2", "dstAcct")
	return p
}

func seedBank(c *cluster.Cluster, branches, accounts int, initial int64) {
	objs := map[store.ObjectID]store.Value{}
	for i := 0; i < branches; i++ {
		objs[store.ID("branch", i)] = store.Int64(initial)
	}
	for i := 0; i < accounts; i++ {
		objs[store.ID("account", i)] = store.Int64(initial)
	}
	c.Seed(objs)
}

func transferParams(sb, db, sa, da, amount int) map[string]any {
	return map[string]any{
		"srcBranch": sb, "dstBranch": db,
		"srcAcct": sa, "dstAcct": da,
		"amount": amount,
	}
}

func analyze(t *testing.T) *unitgraph.Analysis {
	t.Helper()
	an, err := unitgraph.Analyze(transferProgram())
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func totalMoney(t *testing.T, rt *dtm.Runtime, branches, accounts int) (int64, int64) {
	t.Helper()
	var bTot, aTot int64
	err := rt.Atomic(context.Background(), func(tx *dtm.Tx) error {
		bTot, aTot = 0, 0
		for i := 0; i < branches; i++ {
			v, err := tx.Read(store.ID("branch", i))
			if err != nil {
				return err
			}
			bTot += store.AsInt64(v)
		}
		for i := 0; i < accounts; i++ {
			v, err := tx.Read(store.ID("account", i))
			if err != nil {
				return err
			}
			aTot += store.AsInt64(v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return bTot, aTot
}

func TestExecutorModesPreserveSemantics(t *testing.T) {
	an := analyze(t)
	compositions := map[string]func() *acn.Composition{
		"flat":   func() *acn.Composition { return acn.Flat(an) },
		"static": func() *acn.Composition { return acn.Static(an) },
		"manual": func() *acn.Composition {
			c, err := acn.Manual(an, [][]int{{2}, {3}, {0, 1}})
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
	}
	for name, mk := range compositions {
		t.Run(name, func(t *testing.T) {
			c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
			defer c.Close()
			seedBank(c, 2, 4, 1000)
			rt := c.Runtime(1, dtm.Config{Seed: 7})
			exec := acn.NewExecutor(rt, an, mk())

			for i := 0; i < 10; i++ {
				if err := exec.Execute(context.Background(), transferParams(0, 1, i%4, (i+1)%4, 5)); err != nil {
					t.Fatal(err)
				}
			}
			bTot, aTot := totalMoney(t, rt, 2, 4)
			if bTot != 2000 || aTot != 4000 {
				t.Fatalf("money not conserved: branches=%d accounts=%d", bTot, aTot)
			}
			// Branch 0 lost 10*5, branch 1 gained it.
			var b0 int64
			if err := rt.Atomic(context.Background(), func(tx *dtm.Tx) error {
				v, err := tx.Read(store.ID("branch", 0))
				if err != nil {
					return err
				}
				b0 = store.AsInt64(v)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if b0 != 950 {
				t.Fatalf("branch0 = %d, want 950", b0)
			}
		})
	}
}

func TestExecutorSamplersTrackObjects(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 4, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 2, 100)
	rt := c.Runtime(1, dtm.Config{Seed: 7})
	exec := acn.NewExecutor(rt, an, acn.Static(an))
	if err := exec.Execute(context.Background(), transferParams(0, 1, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ids := exec.SampledIDs()
	want := map[store.ObjectID]bool{
		"branch/0": true, "branch/1": true, "account/0": true, "account/1": true,
	}
	if len(ids) != len(want) {
		t.Fatalf("SampledIDs = %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected sampled id %s", id)
		}
	}
	if got := exec.AnchorSample(0); len(got) != 1 || got[0] != "branch/0" {
		t.Fatalf("AnchorSample(0) = %v", got)
	}
}

func TestExecutorConcurrentWithSwap(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 8, 10000)

	alg := acn.NewAlgorithm(an, acn.AlgoConfig{})
	execs := make([]*acn.Executor, 4)
	for i := range execs {
		execs[i] = acn.NewExecutor(c.Runtime(i+1, dtm.Config{Seed: int64(i) + 1}), an, acn.Static(an))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Swapper goroutine flips compositions while transactions run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			comp := alg.Recompose(func(a int) float64 { return float64((a + i) % 5) })
			for _, e := range execs {
				e.SetComposition(comp)
			}
			i++
			time.Sleep(time.Millisecond)
		}
	}()

	errs := make(chan error, len(execs))
	for i, e := range execs {
		wg.Add(1)
		go func(i int, e *acn.Executor) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				if err := e.Execute(context.Background(), transferParams(0, 1, (i+j)%8, (i+j+1)%8, 3)); err != nil {
					errs <- err
					return
				}
			}
		}(i, e)
	}
	// Wait for workers, then stop the swapper.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	defer func() { <-done }()
	defer close(stop)

	for i := 0; i < len(execs); i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	rt := c.Runtime(99, dtm.Config{Seed: 99})
	bTot, aTot := totalMoney(t, rt, 2, 8)
	if bTot != 20000 || aTot != 80000 {
		t.Fatalf("money not conserved under composition swaps: %d/%d", bTot, aTot)
	}
}

func TestControllerAdaptsToHotBranches(t *testing.T) {
	an := analyze(t)
	// Drive the contention meters with a manual clock so window rotation is
	// deterministic: real sleeps race the window boundary under -race, and a
	// meter that sees two silent windows discards the hot counts.
	const window = 50 * time.Millisecond
	var clkMu sync.Mutex
	clk := time.Unix(0, 0)
	now := func() time.Time { clkMu.Lock(); defer clkMu.Unlock(); return clk }
	advance := func(d time.Duration) { clkMu.Lock(); clk = clk.Add(d); clkMu.Unlock() }
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: window, Now: now})
	defer c.Close()
	seedBank(c, 2, 100, 100000)
	ctx := context.Background()

	rt := c.Runtime(1, dtm.Config{Seed: 5})
	exec := acn.NewExecutor(rt, an, acn.Static(an))
	ctrl := acn.NewController(exec, acn.ControllerConfig{Interval: time.Hour})

	// Drive transfers: branches are always 0/1 (hot); accounts spread over
	// 100 (cold).
	for i := 0; i < 60; i++ {
		if err := exec.Execute(ctx, transferParams(0, 1, i%100, (i+37)%100, 1)); err != nil {
			t.Fatal(err)
		}
	}
	advance(window) // let the stats window rotate
	for i := 0; i < 20; i++ {
		if err := exec.Execute(ctx, transferParams(0, 1, i%100, (i+37)%100, 1)); err != nil {
			t.Fatal(err)
		}
	}
	advance(window) // complete the window holding the second batch

	if err := ctrl.RefreshOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if ctrl.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", ctrl.Refreshes())
	}
	comp := exec.Composition()

	// The branch blocks (anchors 0, 1) must now execute after the account
	// blocks (anchors 2, 3).
	pos := map[int]int{}
	for bi, b := range comp.Blocks {
		for _, a := range b.AnchorIDs {
			pos[a] = bi
		}
	}
	if !(pos[0] > pos[2] && pos[0] > pos[3] && pos[1] > pos[2] && pos[1] > pos[3]) {
		t.Fatalf("controller did not move hot branches toward commit: %s (levels: b0=%.1f b1=%.1f a=%.1f)",
			comp, ctrl.Table().Level("branch/0"), ctrl.Table().Level("branch/1"), ctrl.Table().Level("account/0"))
	}

	// And the adapted composition still runs correctly.
	if err := exec.Execute(ctx, transferParams(0, 1, 5, 6, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestControllerStartStop(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 4, StatsWindow: 20 * time.Millisecond})
	defer c.Close()
	seedBank(c, 2, 2, 1000)
	rt := c.Runtime(1, dtm.Config{Seed: 3})
	exec := acn.NewExecutor(rt, an, acn.Static(an))
	ctrl := acn.NewController(exec, acn.ControllerConfig{Interval: 5 * time.Millisecond})

	ctx := context.Background()
	if err := exec.Execute(ctx, transferParams(0, 1, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ctrl.Start(ctx)
	ctrl.Start(ctx) // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for ctrl.Refreshes() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("controller never refreshed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctrl.Stop()
	ctrl.Stop() // idempotent
	n := ctrl.Refreshes()
	time.Sleep(30 * time.Millisecond)
	if ctrl.Refreshes() != n {
		t.Fatal("controller kept refreshing after Stop")
	}
}

func TestControllerPiggybackHooks(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 2, 1000)

	var ctrl *acn.Controller
	rt := c.Runtime(1, dtm.Config{
		Seed:             3,
		StatsEveryNReads: 1,
		StatsWanted: func() []store.ObjectID {
			if ctrl == nil {
				return nil
			}
			return ctrl.Wanted()
		},
		StatsSink: func(levels map[store.ObjectID]float64) {
			if ctrl != nil {
				ctrl.Sink(levels)
			}
		},
	})
	exec := acn.NewExecutor(rt, an, acn.Static(an))
	ctrl = acn.NewController(exec, acn.ControllerConfig{Interval: time.Hour, TableAlpha: 1})

	ctx := context.Background()
	// First execution populates samplers; the second piggybacks stats.
	for i := 0; i < 2; i++ {
		if err := exec.Execute(ctx, transferParams(0, 1, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Four write-commits happened (branch/account writes), so the table
	// should have observed non-zero contention for at least one object.
	ids := ctrl.Wanted()
	if len(ids) == 0 {
		t.Fatal("controller wants no stats despite sampled objects")
	}
	some := false
	for _, id := range ids {
		if ctrl.Table().Level(id) > 0 {
			some = true
		}
	}
	if !some {
		t.Fatal("piggybacked stats never reached the controller table")
	}
}

func TestControllerRefreshFailsWhenClusterDown(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 4, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 2, 100)
	rt := c.Runtime(1, dtm.Config{Seed: 1, QuorumAttempts: 1, RequestTimeout: 50 * time.Millisecond})
	exec := acn.NewExecutor(rt, an, acn.Static(an))
	ctrl := acn.NewController(exec, acn.ControllerConfig{Interval: time.Hour})

	if err := exec.Execute(context.Background(), transferParams(0, 1, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	before := exec.Composition()
	for i := 0; i < 4; i++ {
		c.Kill(quorum.NodeID(i))
	}
	if err := ctrl.RefreshOnce(context.Background()); err == nil {
		t.Fatal("refresh succeeded against a dead cluster")
	}
	// A failed refresh must leave the running composition untouched.
	if exec.Composition() != before {
		t.Fatal("failed refresh swapped the composition")
	}
}
