package acn

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"qracn/internal/contention"
	"qracn/internal/forensics"
	"qracn/internal/store"
	"qracn/internal/trace"
)

// ControllerConfig tunes the periodic recomposition.
type ControllerConfig struct {
	// Interval between Algorithm-module invocations (the paper runs it
	// every 10 s; tests use milliseconds). Default 10 s.
	Interval time.Duration
	// Algo configures the algorithm module.
	Algo AlgoConfig
	// TableAlpha is the EMA weight of the client contention table (0: 0.6).
	TableAlpha float64
	// Tracer, when non-nil, records every recomposition.
	Tracer *trace.Tracer
}

// Controller wires the dynamic module to the algorithm module for one
// executor: it periodically collects the contention level of the objects
// the program recently touched, estimates each UnitBlock's contention, runs
// the three-step recomposition, and swaps the executor's Block sequence.
// It also exposes the Wanted/Sink hooks the DTM runtime uses to piggyback
// stats on ordinary read messages.
type Controller struct {
	exec  *Executor
	algo  *Algorithm
	table *contention.Table

	interval  time.Duration
	tracer    *trace.Tracer
	refreshes atomic.Uint64

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewController builds a controller for the executor.
func NewController(exec *Executor, cfg ControllerConfig) *Controller {
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	alpha := cfg.TableAlpha
	if alpha == 0 {
		alpha = 0.6
	}
	return &Controller{
		exec:     exec,
		algo:     NewAlgorithm(exec.Analysis(), cfg.Algo),
		table:    contention.NewTable(alpha),
		interval: cfg.Interval,
		tracer:   cfg.Tracer,
	}
}

// Table exposes the smoothed contention table.
func (c *Controller) Table() *contention.Table { return c.table }

// Refreshes reports how many recompositions have run.
func (c *Controller) Refreshes() uint64 { return c.refreshes.Load() }

// Wanted implements the piggyback hook: the object IDs whose contention the
// client currently cares about.
func (c *Controller) Wanted() []store.ObjectID { return c.exec.SampledIDs() }

// Sink implements the piggyback hook: levels reported by servers flow into
// the contention table.
func (c *Controller) Sink(levels map[store.ObjectID]float64) { c.table.ObserveAll(levels) }

// anchorLevel estimates a UnitBlock's contention as the mean smoothed level
// of the concrete objects it recently accessed.
func (c *Controller) anchorLevel(id int) float64 {
	return c.table.Mean(c.exec.AnchorSample(id))
}

// RefreshOnce performs one dynamic-module + algorithm-module cycle
// synchronously: query the quorum for the contention of recently touched
// objects, fold into the table, recompose, and swap the Block sequence.
func (c *Controller) RefreshOnce(ctx context.Context) error {
	return c.refresh(ctx, "manual")
}

// refresh is RefreshOnce with the forensic trigger label: "interval" for the
// periodic loop, "manual" for explicit RefreshOnce calls.
func (c *Controller) refresh(ctx context.Context, trigger string) error {
	ids := c.exec.SampledIDs()
	if len(ids) > 0 {
		levels, err := c.exec.Runtime().FetchStats(ctx, ids)
		if err != nil {
			return err
		}
		c.table.ObserveAll(levels)
	}
	before := ""
	if cur := c.exec.Composition(); cur != nil {
		before = cur.String()
	}
	comp, aud := c.algo.RecomposeAudited(c.anchorLevel)
	// Skip the swap when the algorithm module reproduced the current Block
	// sequence: SetComposition recompiles the whole plan, and an unchanged
	// composition would churn it (and every in-flight Execute's view) for
	// nothing.
	applied := before != comp.String()
	c.exec.Runtime().Forensics().RecordRecompose(forensics.RecomposeEvent{
		Trigger:  trigger,
		Before:   before,
		After:    comp.String(),
		Levels:   aud.Levels,
		Merges:   aud.Merges,
		Reorders: aud.Reorders,
		Refusals: aud.Refusals,
		Applied:  applied,
	})
	c.refreshes.Add(1)
	if !applied {
		c.tracer.Record(trace.KindRecomposeSkip, "", comp.String())
		return nil
	}
	c.exec.SetComposition(comp)
	c.tracer.Record(trace.KindRecompose, "", comp.String())
	return nil
}

// Start launches the periodic refresh loop (asynchronous, per §V-C3).
// It is a no-op if already started.
func (c *Controller) Start(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_ = c.refresh(ctx, "interval") // transient quorum errors: retry next tick
			case <-c.stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Stop halts the refresh loop and waits for it to exit.
func (c *Controller) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return
	}
	close(c.stop)
	<-c.done
	c.started = false
}
