package acn

import (
	"context"
	"sync"

	"qracn/internal/contention"
	"qracn/internal/dtm"
	"qracn/internal/forensics"
	"qracn/internal/store"
	"qracn/internal/trace"
)

// Hub coordinates ACN across every transaction profile of one client node:
// the controllers share a single contention table and one stats query per
// refresh covers the union of all profiles' recently-touched objects —
// which is how the paper's client works (one list of accessed objects per
// request, §V-C2), and which lets contention observed through one profile
// inform another profile touching the same objects.
type Hub struct {
	rt    *dtm.Runtime
	table *contention.Table

	mu    sync.Mutex
	execs []*Executor
	algos []*Algorithm
}

// HubConfig tunes a Hub.
type HubConfig struct {
	// Algo configures every profile's algorithm module.
	Algo AlgoConfig
	// TableAlpha is the EMA weight of the shared table (0: 0.6).
	TableAlpha float64
}

// NewHub creates an empty hub over a runtime.
func NewHub(rt *dtm.Runtime, cfg HubConfig) *Hub {
	alpha := cfg.TableAlpha
	if alpha == 0 {
		alpha = 0.6
	}
	return &Hub{rt: rt, table: contention.NewTable(alpha)}
}

// Register adds a profile's executor; its Block sequence will be recomposed
// on every refresh with the given algorithm configuration. On a sharded
// runtime an unset ShardHome defaults to the plurality shard of the
// anchor's recently sampled objects, so recomposition prefers Blocks that
// stay within one quorum group.
func (h *Hub) Register(exec *Executor, cfg AlgoConfig) {
	if cfg.ShardHome == nil {
		if m := h.rt.ShardMap(); m != nil && m.NumShards() > 1 {
			e := exec
			cfg.ShardHome = func(anchor int) int {
				return anchorHome(m.ShardFor, e.AnchorSample(anchor))
			}
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.execs = append(h.execs, exec)
	h.algos = append(h.algos, NewAlgorithm(exec.Analysis(), cfg))
}

// anchorHome reports the shard owning the plurality of an anchor's recently
// sampled objects (-1 when the anchor has no samples yet).
func anchorHome(shardOf func(store.ObjectID) int, ids []store.ObjectID) int {
	best, bestN := -1, 0
	counts := make(map[int]int)
	for _, id := range ids {
		s := shardOf(id)
		counts[s]++
		if counts[s] > bestN || (counts[s] == bestN && s < best) {
			best, bestN = s, counts[s]
		}
	}
	return best
}

// Table exposes the shared contention table.
func (h *Hub) Table() *contention.Table { return h.table }

// Wanted implements the piggyback hook over all registered profiles.
func (h *Hub) Wanted() []store.ObjectID {
	h.mu.Lock()
	execs := append([]*Executor(nil), h.execs...)
	h.mu.Unlock()
	seen := make(map[store.ObjectID]bool)
	var out []store.ObjectID
	for _, e := range execs {
		for _, id := range e.SampledIDs() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Sink implements the piggyback hook: reported levels feed the shared
// table.
func (h *Hub) Sink(levels map[store.ObjectID]float64) { h.table.ObserveAll(levels) }

// RefreshOnce fetches contention for the union of all profiles' objects
// with a single query and recomposes every profile's Block sequence.
func (h *Hub) RefreshOnce(ctx context.Context) error {
	ids := h.Wanted()
	if len(ids) > 0 {
		levels, err := h.rt.FetchStats(ctx, ids)
		if err != nil {
			return err
		}
		h.table.ObserveAll(levels)
	}
	h.mu.Lock()
	execs := append([]*Executor(nil), h.execs...)
	algos := append([]*Algorithm(nil), h.algos...)
	h.mu.Unlock()
	for i, exec := range execs {
		e := exec
		comp, aud := algos[i].RecomposeAudited(func(anchor int) float64 {
			return h.table.Mean(e.AnchorSample(anchor))
		})
		before := ""
		if cur := e.Composition(); cur != nil {
			before = cur.String()
		}
		applied := before != comp.String()
		h.rt.Forensics().RecordRecompose(forensics.RecomposeEvent{
			Trigger:  "interval",
			Before:   before,
			After:    comp.String(),
			Levels:   aud.Levels,
			Merges:   aud.Merges,
			Reorders: aud.Reorders,
			Refusals: aud.Refusals,
			Applied:  applied,
		})
		if !applied {
			h.rt.Tracer().Record(trace.KindRecomposeSkip, "", comp.String())
			continue
		}
		e.SetComposition(comp)
	}
	return nil
}
