package acn

import (
	"math/rand"
	"strings"
	"testing"

	"qracn/internal/store"
	"qracn/internal/txir"
	"qracn/internal/txir/txirtest"
	"qracn/internal/unitgraph"
)

func TestEncodeLoadRoundTrip(t *testing.T) {
	an := analyzeBank(t)
	alg := NewAlgorithm(an, AlgoConfig{})
	comp := alg.Recompose(levels(map[int]float64{0: 50, 1: 48, 2: 1, 3: 1}))

	data, err := comp.Encode(an)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadComposition(an, data)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != comp.String() {
		t.Fatalf("round trip changed composition: %s vs %s", got, comp)
	}
	assertCoverage(t, an, got)
}

func TestLoadRejectsWrongProgram(t *testing.T) {
	an := analyzeBank(t)
	comp := Static(an)
	data, err := comp.Encode(an)
	if err != nil {
		t.Fatal(err)
	}
	other, err := unitgraph.Analyze(txirtest.RandomProgram(rand.New(rand.NewSource(1)), 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadComposition(other, data); err == nil || !strings.Contains(err.Error(), "program") {
		t.Fatalf("err = %v, want program mismatch", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	an := analyzeBank(t)
	if _, err := LoadComposition(an, []byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadComposition(an, []byte(`{"program":"bank-transfer","version":99}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestValidateCompositionCatchesCorruption(t *testing.T) {
	an := analyzeBank(t)
	base := Static(an)

	for name, corrupt := range map[string]func(*Composition){
		"missing block": func(c *Composition) { c.Blocks = c.Blocks[:len(c.Blocks)-1] },
		"duplicate anchor": func(c *Composition) {
			c.Blocks[0].AnchorIDs = append(c.Blocks[0].AnchorIDs, c.Blocks[1].AnchorIDs...)
		},
		"duplicate stmt": func(c *Composition) {
			c.Blocks[1].StmtIdx = append(c.Blocks[1].StmtIdx, c.Blocks[0].StmtIdx[0])
		},
		"descending stmts": func(c *Composition) {
			s := c.Blocks[0].StmtIdx
			if len(s) < 2 {
				c.Blocks[0].StmtIdx = []int{s[0], s[0] - 1}
			} else {
				s[0], s[1] = s[1], s[0]
			}
		},
		"unknown anchor": func(c *Composition) { c.Blocks[0].AnchorIDs[0] = 99 },
		"unknown stmt":   func(c *Composition) { c.Blocks[0].StmtIdx[0] = 999 },
	} {
		// Deep-copy the base composition.
		c := &Composition{}
		for _, b := range base.Blocks {
			c.Blocks = append(c.Blocks, BlockSpec{
				AnchorIDs: append([]int(nil), b.AnchorIDs...),
				StmtIdx:   append([]int(nil), b.StmtIdx...),
			})
		}
		corrupt(c)
		if err := ValidateComposition(an, c); err == nil {
			t.Fatalf("%s: corruption accepted: %s", name, c)
		}
	}
	if err := ValidateComposition(an, nil); err == nil {
		t.Fatal("nil composition accepted")
	}
}

func TestValidateCompositionCatchesOrderViolation(t *testing.T) {
	// Chain X -> Y(keyed by X): swapping their blocks must be rejected.
	an, err := unitgraph.Analyze(chainProgram())
	if err != nil {
		t.Fatal(err)
	}
	good := Static(an)
	if err := ValidateComposition(an, good); err != nil {
		t.Fatal(err)
	}
	bad := &Composition{Blocks: []BlockSpec{good.Blocks[1], good.Blocks[0]}}
	if err := ValidateComposition(an, bad); err == nil {
		t.Fatal("dependency-violating composition accepted")
	}
}

// TestValidateAcceptsAllRecompositions fuzzes the validator against the
// algorithm: everything Recompose produces must validate.
func TestValidateAcceptsAllRecompositions(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		an, err := unitgraph.Analyze(txirtest.RandomProgram(rng, 5, 12))
		if err != nil {
			t.Fatal(err)
		}
		alg := NewAlgorithm(an, AlgoConfig{MergeThreshold: rng.Float64()})
		comp := alg.Recompose(func(id int) float64 { return rng.Float64() * 20 })
		if err := ValidateComposition(an, comp); err != nil {
			t.Fatalf("trial %d: recomposition rejected: %v\ncomposition %s", trial, err, comp)
		}
		data, err := comp.Encode(an)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := LoadComposition(an, data); err != nil {
			t.Fatalf("trial %d: round trip failed: %v", trial, err)
		}
	}
}

// chainProgram: Read(X) then Read(Y) keyed by X's value — a forced
// dependency between the two UnitBlocks.
func chainProgram() *txir.Program {
	p := txir.NewProgram("chain-persist")
	p.Read("X", "X", sref("X"), "x")
	p.Read("Y", "Y", func(e *txir.Env) store.ObjectID {
		return store.ID("Y", e.GetInt64("x"))
	}, "y", "x")
	return p
}
