package acn

import (
	"sort"

	"qracn/internal/forensics"
	"qracn/internal/model"
	"qracn/internal/unitgraph"
)

// AlgoConfig tunes the algorithm module.
type AlgoConfig struct {
	// MergeThreshold is the relative abort-probability difference below
	// which adjacent dependent UnitBlocks merge (step 2). Default 0.3.
	MergeThreshold float64
	// Model converts contention levels into abort probabilities; the paper
	// allows custom models. Default model.DefaultModel().
	Model model.ContentionModel
	// DisableReattach / DisableMerge / DisableSort switch off individual
	// steps for ablation studies; all false in normal operation.
	DisableReattach bool
	DisableMerge    bool
	DisableSort     bool
	// ShardHome, when non-nil, reports the keyspace shard hosting a
	// UnitBlock's recent accesses (-1: unknown). The merge step then skips
	// merges across different known homes: a merged Block prefetches and
	// validates as one batch, and keeping it inside a single quorum group
	// keeps that batch — and any partial rollback that re-executes it — a
	// one-group operation.
	ShardHome func(anchorID int) int
}

func (c *AlgoConfig) fillDefaults() {
	if c.MergeThreshold == 0 {
		c.MergeThreshold = 0.3
	}
	if c.Model == nil {
		c.Model = model.DefaultModel()
	}
}

// Algorithm is the ACN algorithm module for one program. It is stateless
// between invocations: every run starts from the fully decomposed UnitBlock
// set (the paper's step 1 discards the previous Block sequence).
type Algorithm struct {
	an  *unitgraph.Analysis
	cfg AlgoConfig
}

// NewAlgorithm creates the algorithm module over a dependency model.
func NewAlgorithm(an *unitgraph.Analysis, cfg AlgoConfig) *Algorithm {
	cfg.fillDefaults()
	return &Algorithm{an: an, cfg: cfg}
}

// Audit explains one Recompose decision for the forensics pipeline: the
// contention inputs the algorithm saw, how many merges and reorders it
// performed, and every merge it considered but refused (with the closure that
// vetoed it).
type Audit struct {
	// Levels are the per-UnitBlock contention levels the decision was made
	// from (the raw level inputs, before the abort-probability model).
	Levels []forensics.AnchorLevel
	// Merges counts adjacent Block pairs folded together by step 2.
	Merges int
	// Reorders counts Blocks step 3 scheduled at a different position than
	// the dependency-order sequence step 2 produced.
	Reorders int
	// Refusals are the adjacent pairs step 2 examined and left unmerged.
	Refusals []forensics.Refusal
}

// Recompose produces a new Block sequence from the current contention levels
// (level is queried per UnitBlock). The three steps of §V-C3:
//
//  1. split every Block back into UnitBlocks and re-attach each local
//     operation to the most contended UnitBlock among those accessing an
//     object the operation manages;
//  2. merge adjacent dependent UnitBlocks with similar contention;
//  3. order the Blocks by increasing contention — hot spots as close to the
//     commit phase as possible — while preserving data dependencies.
func (alg *Algorithm) Recompose(level func(anchorID int) float64) *Composition {
	comp, _ := alg.RecomposeAudited(level)
	return comp
}

// RecomposeAudited is Recompose plus a decision audit describing what the
// algorithm did and why it declined the merges it declined.
func (alg *Algorithm) RecomposeAudited(level func(anchorID int) float64) (*Composition, *Audit) {
	an := alg.an
	n := an.NumAnchors
	aud := &Audit{Levels: make([]forensics.AnchorLevel, 0, n)}
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		l := level(i)
		probs[i] = alg.cfg.Model.AbortProb(l)
		aud.Levels = append(aud.Levels, forensics.AnchorLevel{Anchor: i, Level: l})
	}

	hosts := alg.reattach(probs)
	groups := baseGroups(an, hosts)
	groups = alg.merge(hosts, groups, probs, aud)
	preSort := make([]int, len(groups))
	for i, g := range groups {
		preSort[i] = g[0]
	}
	groups = alg.sortGroups(hosts, groups, probs)
	for i, g := range groups {
		if g[0] != preSort[i] {
			aud.Reorders++
		}
	}
	return build(an, hosts, groups), aud
}

// hotter imposes the deterministic total order used for host selection:
// higher abort probability wins, ties break toward the later UnitBlock
// (which reproduces the static attachment under uniform contention).
func hotter(probs []float64, a, b int) bool {
	if probs[a] != probs[b] {
		return probs[a] > probs[b]
	}
	return a > b
}

// reattach is step 1. Every statement returns to its UnitBlock; each
// attached operation then moves to the hottest eligible host. A candidate
// assignment that would make the Block-precedence graph cyclic is repaired
// by reverting operations (latest first) to their static hosts, which is
// always acyclic.
func (alg *Algorithm) reattach(probs []float64) []int {
	an := alg.an
	hosts := an.StaticHosts()
	if alg.cfg.DisableReattach {
		return hosts
	}
	for idx := range an.Stmts {
		info := &an.Stmts[idx]
		if info.IsAnchor || len(info.DepAnchors) == 0 {
			continue
		}
		best := info.DepAnchors[0]
		for _, cand := range info.DepAnchors[1:] {
			if hotter(probs, cand, best) {
				best = cand
			}
		}
		hosts[idx] = best
	}
	for !unitgraph.Acyclic(an.NumAnchors, an.BlockEdges(hosts)) {
		reverted := false
		for idx := len(an.Stmts) - 1; idx >= 0; idx-- {
			if !an.Stmts[idx].IsAnchor && hosts[idx] != an.Stmts[idx].StaticHost {
				hosts[idx] = an.Stmts[idx].StaticHost
				reverted = true
				break
			}
		}
		if !reverted {
			break // static assignment reached; guaranteed acyclic
		}
	}
	return hosts
}

// merge is step 2: scan the Block sequence in dependency order and merge
// each Block into its predecessor when the two are dependent and their
// abort probabilities differ by less than the threshold — they will move
// together and an invalidation of either re-executes only the merged Block.
// A merge that would deadlock the ordering (cycle through a Block between
// them) is skipped. aud, when non-nil, collects every merge and every
// refusal with the closure that vetoed it.
func (alg *Algorithm) merge(hosts []int, groups [][]int, probs []float64, aud *Audit) [][]int {
	if alg.cfg.DisableMerge || len(groups) <= 1 {
		return groups
	}
	an := alg.an
	edges := an.BlockEdges(hosts)
	dependent := func(ga, gb []int) bool {
		for _, a := range ga {
			for _, b := range gb {
				if edges[a][b] || edges[b][a] {
					return true
				}
			}
		}
		return false
	}
	heat := func(g []int) float64 {
		ps := make([]float64, len(g))
		for i, a := range g {
			ps[i] = probs[a]
		}
		return alg.cfg.Model.Combine(ps)
	}
	similar := func(ga, gb []int) bool {
		ha, hb := heat(ga), heat(gb)
		hi := ha
		if hb > hi {
			hi = hb
		}
		if hi == 0 {
			return true // both idle: merging removes nesting overhead
		}
		d := ha - hb
		if d < 0 {
			d = -d
		}
		return d <= alg.cfg.MergeThreshold*hi
	}
	home := func(g []int) int {
		if alg.cfg.ShardHome == nil {
			return -1
		}
		h := -1
		for _, a := range g {
			s := alg.cfg.ShardHome(a)
			if s < 0 {
				continue
			}
			if h < 0 {
				h = s
			} else if h != s {
				return -1 // mixed accesses: no single home
			}
		}
		return h
	}
	colocated := func(ga, gb []int) bool {
		ha, hb := home(ga), home(gb)
		return ha < 0 || hb < 0 || ha == hb
	}

	refuse := func(ga, gb []int, reason forensics.RefusalReason) {
		if aud != nil {
			aud.Refusals = append(aud.Refusals, forensics.Refusal{
				First: ga[0], Second: gb[0], Reason: reason,
			})
		}
	}
	out := [][]int{groups[0]}
	for i := 1; i < len(groups); i++ {
		last := out[len(out)-1]
		dep := dependent(last, groups[i])
		if dep && similar(last, groups[i]) && colocated(last, groups[i]) {
			candidate := append(append([]int(nil), last...), groups[i]...)
			sort.Ints(candidate)
			rest := append(append([][]int(nil), out[:len(out)-1]...), candidate)
			rest = append(rest, groups[i+1:]...)
			if groupsAcyclic(an, hosts, rest) {
				out[len(out)-1] = candidate
				if aud != nil {
					aud.Merges++
				}
				continue
			}
			// Merging would cycle the Block order through a group between
			// the pair: a dependency refusal.
			refuse(last, groups[i], forensics.RefusalDependency)
		} else {
			switch {
			case !dep:
				refuse(last, groups[i], forensics.RefusalDependency)
			case !similar(last, groups[i]):
				refuse(last, groups[i], forensics.RefusalSimilarity)
			default:
				refuse(last, groups[i], forensics.RefusalShardHome)
			}
		}
		out = append(out, groups[i])
	}
	return out
}

// groupEdges contracts the block-precedence graph by group.
func groupEdges(an *unitgraph.Analysis, hosts []int, groups [][]int) (map[int]map[int]bool, map[int]int) {
	groupOf := make(map[int]int)
	for gi, g := range groups {
		for _, a := range g {
			groupOf[a] = gi
		}
	}
	out := make(map[int]map[int]bool)
	for u, vs := range an.BlockEdges(hosts) {
		for v := range vs {
			gu, gv := groupOf[u], groupOf[v]
			if gu == gv {
				continue
			}
			if out[gu] == nil {
				out[gu] = make(map[int]bool)
			}
			out[gu][gv] = true
		}
	}
	return out, groupOf
}

func groupsAcyclic(an *unitgraph.Analysis, hosts []int, groups [][]int) bool {
	edges, _ := groupEdges(an, hosts, groups)
	return unitgraph.Acyclic(len(groups), edges)
}

// sortGroups is step 3: a greedy topological order that always schedules the
// coolest ready group next, so contention increases toward the commit point
// while every dependency is preserved.
func (alg *Algorithm) sortGroups(hosts []int, groups [][]int, probs []float64) [][]int {
	if alg.cfg.DisableSort || len(groups) <= 1 {
		return groups
	}
	an := alg.an
	edges, _ := groupEdges(an, hosts, groups)

	heat := make([]float64, len(groups))
	for gi, g := range groups {
		ps := make([]float64, len(g))
		for i, a := range g {
			ps[i] = probs[a]
		}
		heat[gi] = alg.cfg.Model.Combine(ps)
	}

	indeg := make([]int, len(groups))
	for _, vs := range edges {
		for v := range vs {
			indeg[v]++
		}
	}
	var order [][]int
	scheduled := make([]bool, len(groups))
	for len(order) < len(groups) {
		best := -1
		for gi := range groups {
			if scheduled[gi] || indeg[gi] > 0 {
				continue
			}
			if best == -1 || heat[gi] < heat[best] ||
				(heat[gi] == heat[best] && groups[gi][0] < groups[best][0]) {
				best = gi
			}
		}
		if best == -1 {
			// Cycle (cannot happen: merge and reattach guarantee acyclic);
			// fall back to the original order for safety.
			return groups
		}
		scheduled[best] = true
		order = append(order, groups[best])
		for v := range edges[best] {
			indeg[v]--
		}
	}
	return order
}

// AnchorsByHeat is a diagnostic helper: UnitBlock IDs sorted hottest first
// under the given levels.
func (alg *Algorithm) AnchorsByHeat(level func(int) float64) []int {
	out := make([]int, alg.an.NumAnchors)
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(i, j int) bool {
		return level(out[i]) > level(out[j])
	})
	return out
}
