package acn_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"qracn/internal/acn"
	"qracn/internal/cluster"
	"qracn/internal/dtm"
	"qracn/internal/store"
	"qracn/internal/txir"
	"qracn/internal/unitgraph"
)

func TestCheckpointedExecutionSemantics(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 4, 1000)
	rt := c.Runtime(1, dtm.Config{Seed: 7})
	exec := acn.NewExecutor(rt, an, acn.Flat(an))

	for i := 0; i < 10; i++ {
		if err := exec.ExecuteCheckpointed(context.Background(), transferParams(0, 1, i%4, (i+1)%4, 5)); err != nil {
			t.Fatal(err)
		}
	}
	bTot, aTot := totalMoney(t, rt, 2, 4)
	if bTot != 2000 || aTot != 4000 {
		t.Fatalf("money not conserved under checkpointing: %d/%d", bTot, aTot)
	}
}

// TestCheckpointedPartialRollback builds a program where a mid-transaction
// invalidation must roll back to an intermediate checkpoint: the statements
// before the invalidated read must NOT re-execute.
func TestCheckpointedPartialRollback(t *testing.T) {
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	c.Seed(map[store.ObjectID]store.Value{
		"cold": store.Int64(1),
		"hot":  store.Int64(1),
		"tail": store.Int64(1),
	})
	rt := c.Runtime(1, dtm.Config{Seed: 3})
	other := c.Runtime(2, dtm.Config{Seed: 4})
	ctx := context.Background()

	coldRuns, hotRuns, tailRuns := 0, 0, 0
	invalidated := false
	p := txir.NewProgram("cp-test")
	p.Read("cold", "cold", func(*txir.Env) store.ObjectID { return "cold" }, "c")
	p.Local(func(e *txir.Env) error {
		coldRuns++
		e.SetInt64("cval", e.GetInt64("c"))
		return nil
	}, []txir.Var{"c"}, []txir.Var{"cval"})
	p.Read("hot", "hot", func(*txir.Env) store.ObjectID { return "hot" }, "h")
	p.Local(func(e *txir.Env) error {
		hotRuns++
		if !invalidated {
			invalidated = true
			// A concurrent commit invalidates "hot" after we read it.
			if err := other.Atomic(ctx, func(o *dtm.Tx) error {
				return o.Write("hot", store.Int64(2))
			}); err != nil {
				return fmt.Errorf("interfering commit: %v", err)
			}
		}
		e.SetInt64("hval", e.GetInt64("h"))
		return nil
	}, []txir.Var{"h"}, []txir.Var{"hval"})
	// The next read's incremental validation reports "hot" as stale.
	p.Read("tail", "tail", func(*txir.Env) store.ObjectID { return "tail" }, "tl")
	p.Local(func(e *txir.Env) error {
		tailRuns++
		e.SetInt64("sum", e.GetInt64("cval")+e.GetInt64("hval")+e.GetInt64("tl"))
		return nil
	}, []txir.Var{"cval", "hval", "tl"}, []txir.Var{"sum"})
	p.Write("tail", "tail", func(*txir.Env) store.ObjectID { return "tail" }, "sum")

	an, err := unitgraph.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	exec := acn.NewExecutor(rt, an, acn.Flat(an))
	if err := exec.ExecuteCheckpointed(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if coldRuns != 1 {
		t.Fatalf("cold section ran %d times, want 1 (checkpointing saved it)", coldRuns)
	}
	if hotRuns != 2 {
		t.Fatalf("hot section ran %d times, want 2 (rolled back to hot's checkpoint)", hotRuns)
	}
	if tailRuns != 1 {
		t.Fatalf("tail ran %d times, want 1", tailRuns)
	}
	if got := rt.Metrics().CheckpointRollbacks.Load(); got != 1 {
		t.Fatalf("checkpoint rollbacks = %d, want 1", got)
	}
	if got := rt.Metrics().ParentAborts.Load(); got != 0 {
		t.Fatalf("full aborts = %d, want 0", got)
	}

	// The committed value must reflect the *new* hot value (2): rollback
	// re-read it.
	var tail int64
	if err := rt.Atomic(ctx, func(tx *dtm.Tx) error {
		v, err := tx.Read("tail")
		if err != nil {
			return err
		}
		tail = store.AsInt64(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tail != 1+2+1 {
		t.Fatalf("tail = %d, want 4 (1 cold + 2 new hot + 1 tail)", tail)
	}
}

func TestCheckpointedUserErrorPropagates(t *testing.T) {
	c := cluster.New(cluster.Config{Servers: 4, StatsWindow: time.Hour})
	defer c.Close()
	c.Seed(map[store.ObjectID]store.Value{"o": store.Int64(1)})
	rt := c.Runtime(1, dtm.Config{Seed: 1})

	boom := fmt.Errorf("boom")
	p := txir.NewProgram("err")
	p.Read("o", "o", func(*txir.Env) store.ObjectID { return "o" }, "v")
	p.Local(func(*txir.Env) error { return boom }, []txir.Var{"v"}, []txir.Var{"x"})
	an, err := unitgraph.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	exec := acn.NewExecutor(rt, an, acn.Flat(an))
	if err := exec.ExecuteCheckpointed(context.Background(), nil); err == nil {
		t.Fatal("user error swallowed")
	}
}

func TestCheckpointedConcurrentConservation(t *testing.T) {
	an := analyze(t)
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	seedBank(c, 2, 8, 10000)
	ctx := context.Background()

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			rt := c.Runtime(i+1, dtm.Config{Seed: int64(i) + 1})
			exec := acn.NewExecutor(rt, an, acn.Flat(an))
			for j := 0; j < 25; j++ {
				if err := exec.ExecuteCheckpointed(ctx, transferParams(0, 1, (i+j)%8, (i+j+1)%8, 3)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	rt := c.Runtime(99, dtm.Config{Seed: 99})
	bTot, aTot := totalMoney(t, rt, 2, 8)
	if bTot != 20000 || aTot != 80000 {
		t.Fatalf("money not conserved: %d/%d", bTot, aTot)
	}
}
