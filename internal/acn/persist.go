package acn

import (
	"encoding/json"
	"fmt"

	"qracn/internal/unitgraph"
)

// Compositions learned at run time can be persisted and restored, so a
// restarted client warm-starts from the last adapted Block sequence instead
// of re-learning from the static one. Because the program may have changed
// between runs, LoadComposition re-validates the sequence against the
// current dependency model and refuses anything unsound.

// persistedComposition is the stable JSON schema.
type persistedComposition struct {
	Program string      `json:"program"`
	Version int         `json:"version"`
	Blocks  []BlockSpec `json:"blocks"`
}

const persistVersion = 1

// Encode serializes the composition for the given analysis.
func (c *Composition) Encode(an *unitgraph.Analysis) ([]byte, error) {
	if err := ValidateComposition(an, c); err != nil {
		return nil, fmt.Errorf("acn: refusing to encode invalid composition: %w", err)
	}
	return json.Marshal(persistedComposition{
		Program: an.Program.Name,
		Version: persistVersion,
		Blocks:  c.Blocks,
	})
}

// LoadComposition parses a persisted composition and validates it against
// the current analysis.
func LoadComposition(an *unitgraph.Analysis, data []byte) (*Composition, error) {
	var p persistedComposition
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("acn: parse composition: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("acn: composition version %d not supported", p.Version)
	}
	if p.Program != an.Program.Name {
		return nil, fmt.Errorf("acn: composition is for program %q, analysis is %q", p.Program, an.Program.Name)
	}
	c := &Composition{Blocks: p.Blocks}
	if err := ValidateComposition(an, c); err != nil {
		return nil, err
	}
	return c, nil
}

// ValidateComposition checks every structural invariant a composition must
// satisfy to execute soundly over the analysis: each UnitBlock and each
// statement appears exactly once, statements ascend within a Block, and the
// Block order respects every ordering constraint of the dependency model.
func ValidateComposition(an *unitgraph.Analysis, c *Composition) error {
	if c == nil || len(c.Blocks) == 0 {
		return fmt.Errorf("acn: empty composition")
	}
	anchorBlock := make(map[int]int)
	stmtBlock := make(map[int]int)
	for bi, b := range c.Blocks {
		for _, a := range b.AnchorIDs {
			if a < 0 || a >= an.NumAnchors {
				return fmt.Errorf("acn: unknown UnitBlock %d", a)
			}
			if _, dup := anchorBlock[a]; dup {
				return fmt.Errorf("acn: UnitBlock %d appears twice", a)
			}
			anchorBlock[a] = bi
		}
		prev := -1
		for _, s := range b.StmtIdx {
			if s < 0 || s >= len(an.Stmts) {
				return fmt.Errorf("acn: unknown statement %d", s)
			}
			if _, dup := stmtBlock[s]; dup {
				return fmt.Errorf("acn: statement %d appears twice", s)
			}
			if s <= prev {
				return fmt.Errorf("acn: block %d statements not ascending", bi)
			}
			prev = s
			stmtBlock[s] = bi
		}
	}
	if len(anchorBlock) != an.NumAnchors {
		return fmt.Errorf("acn: composition covers %d of %d UnitBlocks", len(anchorBlock), an.NumAnchors)
	}
	if len(stmtBlock) != len(an.Stmts) {
		return fmt.Errorf("acn: composition covers %d of %d statements", len(stmtBlock), len(an.Stmts))
	}
	// Anchors must live in the block that lists them.
	for id, stmtIdx := range an.AnchorStmt {
		if stmtBlock[stmtIdx] != anchorBlock[id] {
			return fmt.Errorf("acn: anchor %d's statement is in block %d but the anchor is listed in block %d",
				id, stmtBlock[stmtIdx], anchorBlock[id])
		}
	}
	// Every ordering constraint must point forward (or stay in-block, where
	// ascending statement order already satisfies it).
	for _, e := range an.OrderEdges {
		if stmtBlock[e[0]] > stmtBlock[e[1]] {
			return fmt.Errorf("acn: ordering %d->%d violated by block order %d > %d",
				e[0], e[1], stmtBlock[e[0]], stmtBlock[e[1]])
		}
	}
	// Forced anchor dependencies.
	for id, stmtIdx := range an.AnchorStmt {
		for _, dep := range an.Stmts[stmtIdx].DepAnchors {
			if anchorBlock[dep] > anchorBlock[id] {
				return fmt.Errorf("acn: UnitBlock %d depends on %d but runs first", id, dep)
			}
		}
	}
	return nil
}
