package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

func batchOf(n int) *wire.Request {
	subs := make([]*wire.Request, n)
	for i := range subs {
		subs[i] = &wire.Request{Kind: wire.KindPing, TxID: fmt.Sprintf("sub-%d", i)}
	}
	return &wire.Request{Kind: wire.KindBatch, Batch: &wire.BatchRequest{Subs: subs}}
}

func TestHandleBatchPreservesOrder(t *testing.T) {
	h := func(_ context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK, Detail: req.TxID}
	}
	resp := HandleBatch(context.Background(), h, batchOf(8))
	if resp.Status != wire.StatusOK || resp.Batch == nil {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Batch.Subs) != 8 {
		t.Fatalf("got %d sub-responses, want 8", len(resp.Batch.Subs))
	}
	for i, sub := range resp.Batch.Subs {
		if want := fmt.Sprintf("sub-%d", i); sub.Detail != want {
			t.Fatalf("sub %d answered %q, want %q", i, sub.Detail, want)
		}
	}
}

func TestHandleBatchDispatchesConcurrently(t *testing.T) {
	// Every sub-handler blocks until all of them have started: the batch can
	// only complete if dispatch is concurrent.
	const n = 6
	var mu sync.Mutex
	started := 0
	allIn := make(chan struct{})
	h := func(ctx context.Context, req *wire.Request) *wire.Response {
		mu.Lock()
		started++
		if started == n {
			close(allIn)
		}
		mu.Unlock()
		select {
		case <-allIn:
			return &wire.Response{Status: wire.StatusOK}
		case <-time.After(2 * time.Second):
			return &wire.Response{Status: wire.StatusError, Detail: "timed out waiting for siblings"}
		}
	}
	resp := HandleBatch(context.Background(), h, batchOf(n))
	for i, sub := range resp.Batch.Subs {
		if sub.Status != wire.StatusOK {
			t.Fatalf("sub %d: %+v (dispatch not concurrent?)", i, sub)
		}
	}
}

func TestHandleBatchRejectsNestedAndNil(t *testing.T) {
	h := func(_ context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK}
	}
	req := &wire.Request{Kind: wire.KindBatch, Batch: &wire.BatchRequest{Subs: []*wire.Request{
		nil,
		batchOf(1),
		{Kind: wire.KindPing},
	}}}
	resp := HandleBatch(context.Background(), h, req)
	if resp.Batch.Subs[0].Status != wire.StatusError {
		t.Fatalf("nil sub = %+v, want error", resp.Batch.Subs[0])
	}
	if resp.Batch.Subs[1].Status != wire.StatusError {
		t.Fatalf("nested batch = %+v, want error", resp.Batch.Subs[1])
	}
	if resp.Batch.Subs[2].Status != wire.StatusOK {
		t.Fatalf("plain sub = %+v, want ok", resp.Batch.Subs[2])
	}
}

func TestHandleBatchCancellationReachesSubRequests(t *testing.T) {
	// In-flight sub-handlers must observe ctx.Done when the caller cancels
	// mid-batch.
	const n = 4
	entered := make(chan struct{}, n)
	h := func(ctx context.Context, req *wire.Request) *wire.Response {
		entered <- struct{}{}
		select {
		case <-ctx.Done():
			return &wire.Response{Status: wire.StatusError, Detail: "handler cancelled"}
		case <-time.After(5 * time.Second):
			return &wire.Response{Status: wire.StatusOK, Detail: "never cancelled"}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *wire.Response, 1)
	go func() { done <- HandleBatch(ctx, h, batchOf(n)) }()
	for i := 0; i < n; i++ {
		<-entered // all subs are in flight
	}
	cancel()
	select {
	case resp := <-done:
		for i, sub := range resp.Batch.Subs {
			if sub.Status != wire.StatusError || !strings.Contains(sub.Detail, "cancelled") {
				t.Fatalf("sub %d = %+v, want cancelled error", i, sub)
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch still blocked after cancellation")
	}
}

func TestTCPBatchRoundTrip(t *testing.T) {
	cli, stop := startTCPPair(t, func(ctx context.Context, req *wire.Request) *wire.Response {
		if req.Kind == wire.KindBatch {
			return HandleBatch(ctx, func(_ context.Context, sub *wire.Request) *wire.Response {
				return &wire.Response{Status: wire.StatusOK, Detail: "echo:" + sub.TxID}
			}, req)
		}
		return &wire.Response{Status: wire.StatusError, Detail: "want batch"}
	})
	defer stop()
	resp, err := cli.Call(context.Background(), 0, batchOf(5))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || resp.Batch == nil || len(resp.Batch.Subs) != 5 {
		t.Fatalf("resp = %+v", resp)
	}
	for i, sub := range resp.Batch.Subs {
		if want := fmt.Sprintf("echo:sub-%d", i); sub.Detail != want {
			t.Fatalf("sub %d = %q, want %q", i, sub.Detail, want)
		}
	}
}

func TestTCPCancelFrameCancelsServerHandler(t *testing.T) {
	// Cancelling the client context while a request is in flight must (a)
	// fail the call with the context error and (b) propagate cancellation to
	// the server-side handler through a cancel frame.
	entered := make(chan struct{}, 1)
	observed := make(chan error, 1)
	cli, stop := startTCPPair(t, func(ctx context.Context, req *wire.Request) *wire.Response {
		entered <- struct{}{}
		select {
		case <-ctx.Done():
			observed <- ctx.Err()
		case <-time.After(5 * time.Second):
			observed <- nil
		}
		return &wire.Response{Status: wire.StatusOK}
	})
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(ctx, 0, &wire.Request{Kind: wire.KindPing})
		done <- err
	}()
	<-entered
	cancel()

	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Call err = %v, want context.Canceled", err)
	}
	select {
	case err := <-observed:
		if err == nil {
			t.Fatal("server handler never observed cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server handler still blocked after cancel frame")
	}
}

func TestTCPRetryCountingOnReconnect(t *testing.T) {
	srv := NewTCPServer(echoHandler, false)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewTCPClient(map[quorum.NodeID]string{0: addr}, false)
	defer cli.Close()
	var mirror atomic.Uint64
	cli.SetRetryCounter(&mirror)

	if _, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); err != nil {
		t.Fatal(err)
	}
	if cli.Retries() != 0 {
		t.Fatalf("retries after clean call = %d", cli.Retries())
	}
	srv.Close()

	srv2 := NewTCPServer(echoHandler, false)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cli.Retries() == 0 {
		t.Fatal("reconnect left the retry counter at zero")
	}
	if mirror.Load() != cli.Retries() {
		t.Fatalf("mirror = %d, internal = %d", mirror.Load(), cli.Retries())
	}
}

func TestTCPRetryDisabled(t *testing.T) {
	cli := NewTCPClient(map[quorum.NodeID]string{0: "127.0.0.1:1"}, false)
	defer cli.Close()
	cli.SetRetryPolicy(RetryPolicy{MaxRetries: -1})
	start := time.Now()
	if _, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if cli.Retries() != 0 {
		t.Fatalf("retries = %d, want 0 with retries disabled", cli.Retries())
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("disabled retries still backed off for %v", d)
	}
}
