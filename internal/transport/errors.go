package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"

	"qracn/internal/quorum"
)

// ErrKind classifies a transport failure so callers (the health detector,
// metrics) can distinguish a crashed node from a slow one or from a local
// protocol problem.
type ErrKind int

// Error kinds.
const (
	// ErrKindUnknown is an unclassified failure.
	ErrKindUnknown ErrKind = iota
	// ErrKindDial: establishing a connection failed (refused, unroutable) —
	// the strongest crash signal.
	ErrKindDial
	// ErrKindTimeout: the request deadline expired with no response — the
	// node may be dead or merely slow.
	ErrKindTimeout
	// ErrKindConnLost: an established connection died mid-call (reset,
	// EOF) — typically the peer process exited.
	ErrKindConnLost
	// ErrKindDecode: the byte stream could not be decoded — the peer is
	// alive but the frames are corrupt or incompatible; not a crash signal.
	ErrKindDecode
)

func (k ErrKind) String() string {
	switch k {
	case ErrKindDial:
		return "dial"
	case ErrKindTimeout:
		return "timeout"
	case ErrKindConnLost:
		return "conn-lost"
	case ErrKindDecode:
		return "decode"
	default:
		return "unknown"
	}
}

// Error is a classified transport failure for one node.
type Error struct {
	Kind ErrKind
	Node quorum.NodeID
	Err  error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("transport: node %d: %s: %v", e.Node, e.Kind, e.Err)
}

// Unwrap exposes the underlying error so errors.Is/As keep working (dial
// failures wrap ErrNodeDown, timeouts wrap the context error, and so on).
func (e *Error) Unwrap() error { return e.Err }

// classify wraps err in an *Error for the given node, deriving the kind
// from the error chain when the caller passes ErrKindUnknown. Already
// classified errors pass through unchanged.
func classify(node quorum.NodeID, kind ErrKind, err error) error {
	if err == nil {
		return nil
	}
	var te *Error
	if errors.As(err, &te) {
		return err
	}
	if errors.Is(err, context.Canceled) {
		// The caller gave up; that says nothing about the node.
		return err
	}
	if kind == ErrKindUnknown {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			kind = ErrKindTimeout
		case errors.Is(err, ErrNodeDown):
			kind = ErrKindConnLost
		}
	}
	return &Error{Kind: kind, Node: node, Err: err}
}

// streamFailKind classifies the error that killed a connection's read loop:
// an orderly or abrupt close is a lost connection, anything else is a
// decode-level failure (the peer spoke, but not our protocol).
func streamFailKind(err error) ErrKind {
	if err == nil {
		return ErrKindConnLost
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return ErrKindConnLost
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return ErrKindConnLost
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ErrKindConnLost
	}
	return ErrKindDecode
}
