package transport

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

func TestClassify(t *testing.T) {
	pre := &Error{Kind: ErrKindDial, Node: 3, Err: ErrNodeDown}
	cases := []struct {
		name     string
		kind     ErrKind
		err      error
		wantKind ErrKind
		wantWrap bool // expect a *transport.Error wrapper
	}{
		{"nil", ErrKindUnknown, nil, 0, false},
		{"already classified", ErrKindTimeout, pre, ErrKindDial, true},
		{"cancel passes through", ErrKindUnknown, context.Canceled, 0, false},
		{"deadline becomes timeout", ErrKindUnknown, context.DeadlineExceeded, ErrKindTimeout, true},
		{"node down becomes conn-lost", ErrKindUnknown, ErrNodeDown, ErrKindConnLost, true},
		{"explicit kind kept", ErrKindDial, ErrNodeDown, ErrKindDial, true},
	}
	for _, tc := range cases {
		got := classify(7, tc.kind, tc.err)
		if tc.err == nil {
			if got != nil {
				t.Errorf("%s: classify(nil) = %v", tc.name, got)
			}
			continue
		}
		var te *Error
		if errors.As(got, &te) != tc.wantWrap {
			t.Errorf("%s: wrapped = %v, want %v (err: %v)", tc.name, !tc.wantWrap, tc.wantWrap, got)
			continue
		}
		if tc.wantWrap && te.Kind != tc.wantKind {
			t.Errorf("%s: kind = %v, want %v", tc.name, te.Kind, tc.wantKind)
		}
		// The original error must survive the wrapping for errors.Is.
		if tc.err != nil && !errors.Is(got, unwrapTarget(tc.err)) {
			t.Errorf("%s: errors.Is lost the cause", tc.name)
		}
	}
}

func unwrapTarget(err error) error {
	var te *Error
	if errors.As(err, &te) {
		return te.Err
	}
	return err
}

func TestStreamFailKind(t *testing.T) {
	cases := []struct {
		err  error
		want ErrKind
	}{
		{nil, ErrKindConnLost},
		{io.EOF, ErrKindConnLost},
		{io.ErrUnexpectedEOF, ErrKindConnLost},
		{context.DeadlineExceeded, ErrKindConnLost},
		{errors.New("gob: unknown type id"), ErrKindDecode},
	}
	for _, tc := range cases {
		if got := streamFailKind(tc.err); got != tc.want {
			t.Errorf("streamFailKind(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestTCPDialErrorClassified(t *testing.T) {
	// Point a client at a port nothing listens on.
	client := NewTCPClient(map[quorum.NodeID]string{0: "127.0.0.1:1"}, false)
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := client.Call(ctx, 0, &wire.Request{Kind: wire.KindPing})
	var te *Error
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *transport.Error", err)
	}
	if te.Kind != ErrKindDial || te.Node != 0 {
		t.Fatalf("err = %+v, want dial-classified for node 0", te)
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatal("dial failure no longer matches ErrNodeDown")
	}
}

func TestChannelFaultInjection(t *testing.T) {
	net := NewChannelNetwork(ChannelConfig{})
	defer net.Close()
	net.Register(0, func(ctx context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK}
	})

	// Err fault: immediate classified failure, invisible to the oracle.
	boom := &Error{Kind: ErrKindDial, Node: 0, Err: ErrNodeDown}
	net.SetFault(func(to quorum.NodeID, req *wire.Request) Fault {
		return Fault{Err: boom}
	})
	if !net.Alive(0) {
		t.Fatal("fault injection must not affect the Alive oracle")
	}
	if _, err := net.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want injected ErrNodeDown", err)
	}

	// Drop fault: the call blocks until the context deadline and comes back
	// timeout-classified.
	net.SetFault(func(to quorum.NodeID, req *wire.Request) Fault {
		return Fault{Drop: true}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := net.Call(ctx, 0, &wire.Request{Kind: wire.KindPing})
	var te *Error
	if !errors.As(err, &te) || te.Kind != ErrKindTimeout {
		t.Fatalf("dropped call err = %v, want timeout-classified", err)
	}

	// Removing the hook restores normal delivery.
	net.SetFault(nil)
	resp, err := net.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("after clearing fault: %v, %v", resp, err)
	}
}

func TestChaosClientCutAndHeal(t *testing.T) {
	net := NewChannelNetwork(ChannelConfig{})
	defer net.Close()
	net.Register(2, func(ctx context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK}
	})
	chaos := NewChaosClient(net, 1)

	chaos.Cut(2, true)
	_, err := chaos.Call(context.Background(), 2, &wire.Request{Kind: wire.KindPing})
	var te *Error
	if !errors.As(err, &te) || te.Kind != ErrKindDial {
		t.Fatalf("cut call err = %v, want dial-classified", err)
	}

	chaos.Cut(2, false)
	resp, err := chaos.Call(context.Background(), 2, &wire.Request{Kind: wire.KindPing})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("healed call: %v, %v", resp, err)
	}
}

func TestChaosClientDrop(t *testing.T) {
	net := NewChannelNetwork(ChannelConfig{})
	defer net.Close()
	net.Register(0, func(ctx context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK}
	})
	chaos := NewChaosClient(net, 42)
	chaos.SetDropRate(0, 1.0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := chaos.Call(ctx, 0, &wire.Request{Kind: wire.KindPing})
	var te *Error
	if !errors.As(err, &te) || te.Kind != ErrKindTimeout {
		t.Fatalf("dropped call err = %v, want timeout-classified", err)
	}
}
