package transport

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

// ChaosClient wraps any Client with per-node fault injection: message-loss
// probability, added latency, and hard cuts (a partitioned node fails fast
// as if its address were unroutable). It is the TCP-deployment counterpart
// of ChannelNetwork.SetFault — tests interpose it between a runtime and a
// real TCPClient to exercise the failure detector without killing
// processes, or alongside listener kills for full chaos runs.
type ChaosClient struct {
	inner Client

	mu    sync.Mutex
	rng   *rand.Rand
	drop  map[quorum.NodeID]float64
	delay map[quorum.NodeID]time.Duration
	cut   map[quorum.NodeID]bool
}

// NewChaosClient wraps inner; seed fixes the drop-roll sequence (0 derives
// one from the clock).
func NewChaosClient(inner Client, seed int64) *ChaosClient {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &ChaosClient{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		drop:  make(map[quorum.NodeID]float64),
		delay: make(map[quorum.NodeID]time.Duration),
		cut:   make(map[quorum.NodeID]bool),
	}
}

// SetDropRate makes calls to the node vanish with probability p (the caller
// blocks until its context expires, as a lost packet would).
func (c *ChaosClient) SetDropRate(id quorum.NodeID, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drop[id] = p
}

// SetDelay adds fixed latency to every call to the node.
func (c *ChaosClient) SetDelay(id quorum.NodeID, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay[id] = d
}

// Cut partitions the node away (true) or heals it (false): calls fail
// immediately with a dial-classified error.
func (c *ChaosClient) Cut(id quorum.NodeID, cut bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut[id] = cut
}

// Call implements Client.
func (c *ChaosClient) Call(ctx context.Context, to quorum.NodeID, req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	cut := c.cut[to]
	delay := c.delay[to]
	dropped := false
	if p := c.drop[to]; p > 0 {
		dropped = c.rng.Float64() < p
	}
	c.mu.Unlock()

	if cut {
		return nil, &Error{Kind: ErrKindDial, Node: to, Err: ErrNodeDown}
	}
	if dropped {
		<-ctx.Done()
		return nil, classify(to, ErrKindTimeout, ctx.Err())
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		t.Stop()
	}
	return c.inner.Call(ctx, to, req)
}

var _ Client = (*ChaosClient)(nil)
