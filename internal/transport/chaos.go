package transport

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

// ChaosClient wraps any Client with per-node fault injection: message-loss
// probability, added latency, and hard cuts (a partitioned node fails fast
// as if its address were unroutable). It is the TCP-deployment counterpart
// of ChannelNetwork.SetFault — tests interpose it between a runtime and a
// real TCPClient to exercise the failure detector without killing
// processes, or alongside listener kills for full chaos runs.
type ChaosClient struct {
	inner Client

	mu         sync.Mutex
	rng        *rand.Rand
	drop       map[quorum.NodeID]float64
	delay      map[quorum.NodeID]time.Duration
	replyDelay map[quorum.NodeID]time.Duration
	ramp       map[quorum.NodeID]rampSpec
	cut        map[quorum.NodeID]bool
}

// rampSpec describes gray-failure latency that grows linearly from zero to
// target over the window starting at from, then holds — the "node getting
// slower and slower" shape real degrading disks and GC death spirals produce,
// which step-function delays never exercise.
type rampSpec struct {
	target time.Duration
	over   time.Duration
	from   time.Time
}

// at returns the ramped delay at time t.
func (r rampSpec) at(t time.Time) time.Duration {
	if r.target <= 0 {
		return 0
	}
	el := t.Sub(r.from)
	if el <= 0 {
		return 0
	}
	if r.over <= 0 || el >= r.over {
		return r.target
	}
	return time.Duration(float64(r.target) * (float64(el) / float64(r.over)))
}

// NewChaosClient wraps inner; seed fixes the drop-roll sequence (0 derives
// one from the clock).
func NewChaosClient(inner Client, seed int64) *ChaosClient {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &ChaosClient{
		inner:      inner,
		rng:        rand.New(rand.NewSource(seed)),
		drop:       make(map[quorum.NodeID]float64),
		delay:      make(map[quorum.NodeID]time.Duration),
		replyDelay: make(map[quorum.NodeID]time.Duration),
		ramp:       make(map[quorum.NodeID]rampSpec),
		cut:        make(map[quorum.NodeID]bool),
	}
}

// SetDropRate makes calls to the node vanish with probability p (the caller
// blocks until its context expires, as a lost packet would).
func (c *ChaosClient) SetDropRate(id quorum.NodeID, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drop[id] = p
}

// SetDelay adds fixed latency on the request direction of every call to the
// node (before the request is delivered).
func (c *ChaosClient) SetDelay(id quorum.NodeID, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay[id] = d
}

// SetReplyDelay adds fixed latency on the reply direction: the request is
// delivered (and executed) promptly, but the answer is held back. This is the
// nastier half of a gray failure — the server did the work and holds the
// locks, yet the client can't tell it apart from a lost request.
func (c *ChaosClient) SetReplyDelay(id quorum.NodeID, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replyDelay[id] = d
}

// SetRamp makes the node's request latency grow linearly from zero to target
// over the given window (then hold at target); over <= 0 applies target
// immediately. target <= 0 clears the ramp. The ramp adds to any SetDelay
// latency.
func (c *ChaosClient) SetRamp(id quorum.NodeID, target, over time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if target <= 0 {
		delete(c.ramp, id)
		return
	}
	c.ramp[id] = rampSpec{target: target, over: over, from: time.Now()}
}

// Cut partitions the node away (true) or heals it (false): calls fail
// immediately with a dial-classified error.
func (c *ChaosClient) Cut(id quorum.NodeID, cut bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut[id] = cut
}

// Call implements Client.
func (c *ChaosClient) Call(ctx context.Context, to quorum.NodeID, req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	cut := c.cut[to]
	delay := c.delay[to]
	if r, ok := c.ramp[to]; ok {
		delay += r.at(time.Now())
	}
	replyDelay := c.replyDelay[to]
	dropped := false
	if p := c.drop[to]; p > 0 {
		dropped = c.rng.Float64() < p
	}
	c.mu.Unlock()

	if cut {
		return nil, &Error{Kind: ErrKindDial, Node: to, Err: ErrNodeDown}
	}
	if dropped {
		<-ctx.Done()
		return nil, classify(to, ErrKindTimeout, ctx.Err())
	}
	if err := c.sleep(ctx, to, delay); err != nil {
		return nil, err
	}
	resp, err := c.inner.Call(ctx, to, req)
	if err != nil {
		return nil, err
	}
	if err := c.sleep(ctx, to, replyDelay); err != nil {
		return nil, err
	}
	return resp, nil
}

// sleep blocks for d, honouring context cancellation. A cancellation mid-
// delay is classified as a per-node timeout — the same shape a real slow
// link produces — rather than leaking a bare context error that callers (and
// the failure-detector classifier) would not attribute to the node.
func (c *ChaosClient) sleep(ctx context.Context, to quorum.NodeID, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return classify(to, ErrKindTimeout, ctx.Err())
	}
}

var _ Client = (*ChaosClient)(nil)
