package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"qracn/internal/wire"
)

func okHandler(ctx context.Context, req *wire.Request) *wire.Response {
	return &wire.Response{Status: wire.StatusOK}
}

func TestRampSpecShape(t *testing.T) {
	t0 := time.Unix(1000, 0)
	r := rampSpec{target: 100 * time.Millisecond, over: time.Second, from: t0}
	cases := []struct {
		at   time.Duration
		want time.Duration
	}{
		{-time.Second, 0}, // before the ramp starts
		{0, 0},            // at the start
		{250 * time.Millisecond, 25 * time.Millisecond},
		{500 * time.Millisecond, 50 * time.Millisecond},
		{time.Second, 100 * time.Millisecond}, // ramp complete
		{time.Minute, 100 * time.Millisecond}, // holds at target
	}
	for _, tc := range cases {
		if got := r.at(t0.Add(tc.at)); got != tc.want {
			t.Errorf("at(+%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	// over <= 0 applies the target immediately.
	step := rampSpec{target: 7 * time.Millisecond, from: t0}
	if got := step.at(t0.Add(time.Nanosecond)); got != 7*time.Millisecond {
		t.Errorf("step ramp = %v, want full target", got)
	}
	// Cleared ramp (target <= 0) contributes nothing.
	if got := (rampSpec{}).at(t0.Add(time.Hour)); got != 0 {
		t.Errorf("zero ramp = %v, want 0", got)
	}
}

// TestChaosClientReplyDelay checks the reply-direction injection: the server
// executes the request promptly (the gray-failure half where work happens and
// locks are held), only the answer is late.
func TestChaosClientReplyDelay(t *testing.T) {
	net := NewChannelNetwork(ChannelConfig{})
	defer net.Close()
	served := make(chan time.Time, 1)
	net.Register(0, func(ctx context.Context, req *wire.Request) *wire.Response {
		served <- time.Now()
		return &wire.Response{Status: wire.StatusOK}
	})
	chaos := NewChaosClient(net, 7)
	chaos.SetReplyDelay(0, 60*time.Millisecond)

	start := time.Now()
	resp, err := chaos.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("call: %v, %v", resp, err)
	}
	if total := time.Since(start); total < 50*time.Millisecond {
		t.Fatalf("reply delay not applied: round trip %v", total)
	}
	servedAt := <-served
	if lag := servedAt.Sub(start); lag > 30*time.Millisecond {
		t.Fatalf("request direction delayed by %v; reply-delay must not slow delivery", lag)
	}
}

// TestChaosClientSleepClassification pins the detector contract of delays cut
// short by the caller: a context DEADLINE mid-delay is a per-node timeout (a
// slow link looks like a timeout and must count against the node), while a
// context CANCEL passes through raw (the caller gave up — e.g. an abandoned
// hedge — and the node must not be blamed).
func TestChaosClientSleepClassification(t *testing.T) {
	net := NewChannelNetwork(ChannelConfig{})
	defer net.Close()
	net.Register(0, okHandler)
	chaos := NewChaosClient(net, 7)
	chaos.SetDelay(0, time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := chaos.Call(ctx, 0, &wire.Request{Kind: wire.KindPing})
	var te *Error
	if !errors.As(err, &te) || te.Kind != ErrKindTimeout || te.Node != 0 {
		t.Fatalf("deadline mid-delay = %v, want node-0 timeout", err)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		ccancel()
	}()
	_, err = chaos.Call(cctx, 0, &wire.Request{Kind: wire.KindPing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel mid-delay = %v, want context.Canceled to survive", err)
	}
	if wrapped := new(Error); errors.As(err, &wrapped) {
		t.Fatalf("cancel mid-delay was node-classified (%+v); abandoned calls must stay detector-neutral", wrapped)
	}
}

// TestChaosClientRampGrows drives the ramp through Call: latency grows over
// the window instead of stepping, the degradation shape real graying nodes
// produce.
func TestChaosClientRampGrows(t *testing.T) {
	net := NewChannelNetwork(ChannelConfig{})
	defer net.Close()
	net.Register(0, okHandler)
	chaos := NewChaosClient(net, 7)
	chaos.SetRamp(0, 80*time.Millisecond, 160*time.Millisecond)

	timeCall := func() time.Duration {
		start := time.Now()
		if _, err := chaos.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); err != nil {
			t.Fatalf("call: %v", err)
		}
		return time.Since(start)
	}
	early := timeCall() // just after SetRamp: a small fraction of target
	time.Sleep(200 * time.Millisecond)
	late := timeCall() // past the window: held at target
	if early >= 60*time.Millisecond {
		t.Fatalf("early ramped call took %v, want well under the 80ms target", early)
	}
	if late < 60*time.Millisecond {
		t.Fatalf("held ramped call took %v, want ~80ms target", late)
	}

	// target <= 0 clears the ramp.
	chaos.SetRamp(0, 0, 0)
	if d := timeCall(); d > 20*time.Millisecond {
		t.Fatalf("cleared ramp still delays calls: %v", d)
	}
}
