package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qracn/internal/quorum"
	"qracn/internal/store"
	"qracn/internal/wire"
)

func echoHandler(_ context.Context, req *wire.Request) *wire.Response {
	return &wire.Response{Status: wire.StatusOK, Detail: req.TxID}
}

func TestChannelCall(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{})
	n.Register(0, echoHandler)
	resp, err := n.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing, TxID: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Detail != "hello" {
		t.Fatalf("Detail = %q", resp.Detail)
	}
}

func TestChannelUnknownNode(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{})
	_, err := n.Call(context.Background(), 7, &wire.Request{Kind: wire.KindPing})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestChannelDownNode(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{})
	n.Register(0, echoHandler)
	n.SetDown(0, true)
	if n.Alive(0) {
		t.Fatal("Alive(0) = true after SetDown")
	}
	_, err := n.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing})
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	n.SetDown(0, false)
	if _, err := n.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
}

func TestChannelClose(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{})
	n.Register(0, echoHandler)
	n.Close()
	if _, err := n.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestChannelLatency(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{Latency: 5 * time.Millisecond, Seed: 1})
	n.Register(0, echoHandler)
	start := time.Now()
	if _, err := n.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 10ms (two hops)", d)
	}
}

func TestChannelContextCancellation(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{Latency: time.Second, Seed: 1})
	n.Register(0, echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := n.Call(ctx, 0, &wire.Request{Kind: wire.KindPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestChannelIsolatesMessages(t *testing.T) {
	// The server mutates the request it receives and returns a value that it
	// then mutates; neither side must observe the other's changes.
	var serverHeld *wire.Response
	n := NewChannelNetwork(ChannelConfig{})
	n.Register(0, func(_ context.Context, req *wire.Request) *wire.Response {
		req.Read.Validate[0].Version = 999 // must not be visible to caller
		resp := &wire.Response{
			Status: wire.StatusOK,
			Read:   &wire.ReadResponse{Value: store.Bytes{1}, Version: 1},
		}
		serverHeld = resp
		return resp
	})
	req := &wire.Request{
		Kind: wire.KindRead,
		Read: &wire.ReadRequest{Object: "o", Validate: []store.ReadDesc{{ID: "a", Version: 1}}},
	}
	resp, err := n.Call(context.Background(), 0, req)
	if err != nil {
		t.Fatal(err)
	}
	if req.Read.Validate[0].Version != 1 {
		t.Fatal("server mutation leaked into the caller's request")
	}
	serverHeld.Read.Value.(store.Bytes)[0] = 9
	if resp.Read.Value.(store.Bytes)[0] != 1 {
		t.Fatal("server kept a live reference to the caller's response")
	}
}

func TestChannelConcurrentCalls(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 42})
	var count atomic.Int64
	n.Register(0, func(_ context.Context, req *wire.Request) *wire.Response {
		count.Add(1)
		return &wire.Response{Status: wire.StatusOK}
	})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := n.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if count.Load() != 50 {
		t.Fatalf("handled %d calls, want 50", count.Load())
	}
}

func startTCPPair(t *testing.T, h Handler) (*TCPClient, func()) {
	t.Helper()
	srv := NewTCPServer(h, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewTCPClient(map[quorum.NodeID]string{0: addr}, true)
	return cli, func() {
		cli.Close()
		srv.Close()
	}
}

func TestTCPRoundTrip(t *testing.T) {
	cli, stop := startTCPPair(t, func(_ context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{
			Status: wire.StatusOK,
			Read:   &wire.ReadResponse{Value: store.Int64(11), Version: 3},
		}
	})
	defer stop()
	resp, err := cli.Call(context.Background(), 0, &wire.Request{
		Kind: wire.KindRead,
		Read: &wire.ReadRequest{Object: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.AsInt64(resp.Read.Value) != 11 || resp.Read.Version != 3 {
		t.Fatalf("resp = %+v", resp.Read)
	}
}

func TestTCPConcurrentMultiplexing(t *testing.T) {
	cli, stop := startTCPPair(t, func(_ context.Context, req *wire.Request) *wire.Response {
		// Reply with the request's TxID so we can verify responses are
		// matched to the right caller despite arbitrary interleaving.
		time.Sleep(time.Millisecond)
		return &wire.Response{Status: wire.StatusOK, Detail: req.TxID}
	})
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("tx-%d", i)
			resp, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing, TxID: id})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Detail != id {
				t.Errorf("response for %s got %s", id, resp.Detail)
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPUnknownNode(t *testing.T) {
	cli := NewTCPClient(map[quorum.NodeID]string{}, false)
	defer cli.Close()
	_, err := cli.Call(context.Background(), 3, &wire.Request{Kind: wire.KindPing})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	cli := NewTCPClient(map[quorum.NodeID]string{0: "127.0.0.1:1"}, false)
	defer cli.Close()
	_, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing})
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestTCPServerShutdownUnblocksCallers(t *testing.T) {
	block := make(chan struct{})
	srv := NewTCPServer(func(_ context.Context, req *wire.Request) *wire.Response {
		<-block
		return &wire.Response{Status: wire.StatusOK}
	}, false)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewTCPClient(map[quorum.NodeID]string{0: addr}, false)
	defer cli.Close()

	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(block) // let the in-flight handler finish so Close doesn't hang
	srv.Close()
	select {
	case err := <-done:
		// Either a normal reply (handler finished before teardown) or a
		// connection error is acceptable; hanging is not.
		_ = err
	case <-time.After(2 * time.Second):
		t.Fatal("caller still blocked after server close")
	}
}

func TestTCPReconnectAfterServerRestart(t *testing.T) {
	srv := NewTCPServer(echoHandler, false)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewTCPClient(map[quorum.NodeID]string{0: addr}, false)
	defer cli.Close()
	if _, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := NewTCPServer(echoHandler, false)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// The first call(s) may hit the dead connection; the client must
	// re-dial and succeed shortly after.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing})
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPMultiServerRouting(t *testing.T) {
	// Three servers, each answering with its own tag: the client must route
	// by node ID.
	addrs := map[quorum.NodeID]string{}
	var servers []*TCPServer
	for i := 0; i < 3; i++ {
		tag := fmt.Sprintf("node-%d", i)
		srv := NewTCPServer(func(_ context.Context, req *wire.Request) *wire.Response {
			return &wire.Response{Status: wire.StatusOK, Detail: tag}
		}, false)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[quorum.NodeID(i)] = addr
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	cli := NewTCPClient(addrs, false)
	defer cli.Close()
	for i := 0; i < 3; i++ {
		resp, err := cli.Call(context.Background(), quorum.NodeID(i), &wire.Request{Kind: wire.KindPing})
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("node-%d", i); resp.Detail != want {
			t.Fatalf("node %d answered %q", i, resp.Detail)
		}
	}
}

func TestTCPLargeCompressedPayload(t *testing.T) {
	// A value far above the compression threshold must survive the
	// compressed TCP path intact.
	big := make(store.Bytes, 256<<10)
	for i := range big {
		big[i] = byte(i % 251)
	}
	cli, stop := startTCPPair(t, func(_ context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{
			Status: wire.StatusOK,
			Read:   &wire.ReadResponse{Value: big, Version: 1},
		}
	})
	defer stop()
	resp, err := cli.Call(context.Background(), 0, &wire.Request{
		Kind: wire.KindRead, Read: &wire.ReadRequest{Object: "big"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Read.Value.(store.Bytes)
	if len(got) != len(big) {
		t.Fatalf("len = %d, want %d", len(got), len(big))
	}
	for i := range got {
		if got[i] != big[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}
