package transport

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"time"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

// ChannelConfig tunes the simulated network.
type ChannelConfig struct {
	// Latency is the one-way message latency; a request/response call pays
	// it twice. Zero disables the latency simulation entirely.
	Latency time.Duration
	// Jitter adds a uniform random component in [0, Jitter) to each one-way
	// hop.
	Jitter time.Duration
	// Seed makes the jitter sequence reproducible; 0 derives a seed from
	// the clock.
	Seed int64
	// Codec, when set, crosses the node boundary through a real wire codec
	// stream instead of the Clone deep copy: every request and response is
	// encoded and decoded through a persistent per-destination pipe, exactly
	// the serialization a TCP connection performs (gob amortizes its type
	// metadata the same way). This is what makes in-process codec A/B
	// benchmarks measure true marshaling cost. nil keeps Clone.
	Codec wire.Codec
}

// Fault is the outcome a FaultFunc injects into one call.
type Fault struct {
	// Drop loses the message: the call blocks until the caller's context
	// expires, modelling a silently dropped packet (the client sees a
	// timeout, not a refused connection).
	Drop bool
	// Delay adds extra one-way latency before delivery.
	Delay time.Duration
	// Err fails the call immediately with this error (e.g. ErrNodeDown to
	// model a refused connection, or a typed *Error).
	Err error
}

// FaultFunc inspects an outgoing call and decides what fault, if any, to
// inject. It runs on the caller's goroutine for every Call, so hooks keyed
// on the destination node (or node pairs, via closure state) give tests
// deterministic drop/delay/partition control without touching the oracle
// down-map.
type FaultFunc func(to quorum.NodeID, req *wire.Request) Fault

// ChannelNetwork is an in-process "cluster": server handlers registered per
// node ID, calls delivered synchronously after a simulated network delay,
// and messages deep-copied at both boundaries so replicas cannot share
// memory. Nodes can be taken down and brought back to exercise the
// fault-tolerance paths.
type ChannelNetwork struct {
	cfg ChannelConfig

	mu       sync.RWMutex
	handlers map[quorum.NodeID]Handler
	down     map[quorum.NodeID]bool
	fault    FaultFunc
	closed   bool

	rngMu sync.Mutex
	rng   *rand.Rand

	pipeMu sync.Mutex
	pipes  map[quorum.NodeID]*codecPipe
}

// codecPipe carries envelopes across the in-process node boundary through a
// persistent codec stream: one shared buffer with a long-lived encoder and
// decoder, encode and decode performed back-to-back under the lock. The
// strict alternation means each Decode consumes exactly the frame its
// Encode produced, which both stream codecs guarantee (one envelope = one
// frame).
type codecPipe struct {
	mu  sync.Mutex
	buf bytes.Buffer
	enc wire.EnvelopeEncoder
	dec wire.EnvelopeDecoder
}

func newCodecPipe(c wire.Codec) *codecPipe {
	p := &codecPipe{}
	p.enc = c.NewEncoder(&p.buf, false)
	p.dec = c.NewDecoder(&p.buf)
	return p
}

func (p *codecPipe) transfer(env *wire.Envelope) (*wire.Envelope, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.enc.Encode(env); err != nil {
		return nil, err
	}
	return p.dec.Decode()
}

// pipe returns the destination node's codec pipe, creating it on first use.
func (n *ChannelNetwork) pipe(to quorum.NodeID) *codecPipe {
	n.pipeMu.Lock()
	defer n.pipeMu.Unlock()
	p, ok := n.pipes[to]
	if !ok {
		p = newCodecPipe(n.cfg.Codec)
		n.pipes[to] = p
	}
	return p
}

// NewChannelNetwork creates an empty simulated network.
func NewChannelNetwork(cfg ChannelConfig) *ChannelNetwork {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &ChannelNetwork{
		cfg:      cfg,
		handlers: make(map[quorum.NodeID]Handler),
		down:     make(map[quorum.NodeID]bool),
		rng:      rand.New(rand.NewSource(seed)),
		pipes:    make(map[quorum.NodeID]*codecPipe),
	}
}

// Register installs the handler for a server node.
func (n *ChannelNetwork) Register(id quorum.NodeID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// SetDown marks a node unreachable (true) or reachable (false).
func (n *ChannelNetwork) SetDown(id quorum.NodeID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = down
}

// SetFault installs (or, with nil, removes) a fault-injection hook consulted
// on every call. Unlike SetDown, injected faults are invisible to the Alive
// oracle — exactly what failure-detector tests need.
func (n *ChannelNetwork) SetFault(f FaultFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fault = f
}

// Alive reports whether the node is registered and not marked down. It has
// the quorum.AliveFunc shape so it can drive quorum construction directly.
func (n *ChannelNetwork) Alive(id quorum.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.handlers[id]
	return ok && !n.down[id]
}

// Close marks the network closed; subsequent calls fail with ErrClosed.
func (n *ChannelNetwork) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

func (n *ChannelNetwork) hop(ctx context.Context) error {
	if n.cfg.Latency == 0 && n.cfg.Jitter == 0 {
		return ctx.Err()
	}
	d := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		n.rngMu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.rngMu.Unlock()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Call implements Client. The request and response are deep-copied so the
// caller and the server never share mutable state, mirroring serialization
// over a real network.
func (n *ChannelNetwork) Call(ctx context.Context, to quorum.NodeID, req *wire.Request) (*wire.Response, error) {
	n.mu.RLock()
	h, ok := n.handlers[to]
	down := n.down[to]
	fault := n.fault
	closed := n.closed
	n.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, ErrUnknownNode
	}
	if down {
		return nil, ErrNodeDown
	}
	if fault != nil {
		f := fault(to, req)
		if f.Err != nil {
			return nil, f.Err
		}
		if f.Drop {
			<-ctx.Done()
			return nil, classify(to, ErrKindTimeout, ctx.Err())
		}
		if f.Delay > 0 {
			t := time.NewTimer(f.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
		}
	}
	if err := n.hop(ctx); err != nil {
		return nil, err
	}
	// Isolate the two sides: either serialize through the configured codec
	// (as a real connection would) or deep-copy via Clone.
	reqIn := req
	if n.cfg.Codec != nil {
		env, err := n.pipe(to).transfer(&wire.Envelope{Req: req})
		if err != nil {
			return nil, &Error{Kind: ErrKindDecode, Node: to, Err: err}
		}
		reqIn = env.Req
	} else {
		reqIn = req.Clone()
	}
	// The caller's context crosses the "network" directly: handlers observe
	// the client's deadline and cancellation, as the TCP transport's cancel
	// frames arrange for real deployments.
	resp := h(ctx, reqIn)

	// The node may have gone down while "processing"; model the lost reply.
	n.mu.RLock()
	down = n.down[to]
	n.mu.RUnlock()
	if down {
		return nil, ErrNodeDown
	}
	if err := n.hop(ctx); err != nil {
		return nil, err
	}
	if n.cfg.Codec != nil {
		env, err := n.pipe(to).transfer(&wire.Envelope{IsResponse: true, Resp: resp})
		if err != nil {
			return nil, &Error{Kind: ErrKindDecode, Node: to, Err: err}
		}
		return env.Resp, nil
	}
	return resp.Clone(), nil
}

var _ Client = (*ChannelNetwork)(nil)
