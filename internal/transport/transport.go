// Package transport moves wire messages between DTM clients and quorum
// nodes. Two implementations are provided: an in-process channel network
// that models the paper's 1 Gbps switched cluster by injecting per-message
// latency (used by tests, benchmarks, and the figure harness), and a real
// TCP transport (gob frames, request multiplexing, optional compression)
// for multi-process deployment via cmd/qracn-node.
package transport

import (
	"context"
	"errors"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

// Handler processes one request on a server node and returns the response.
// Handlers must be safe for concurrent use.
type Handler func(req *wire.Request) *wire.Response

// Client issues request/response calls to server nodes.
type Client interface {
	// Call sends req to the given node and waits for its response.
	Call(ctx context.Context, to quorum.NodeID, req *wire.Request) (*wire.Response, error)
}

// Errors returned by transports.
var (
	// ErrNodeDown reports that the destination node is unreachable.
	ErrNodeDown = errors.New("transport: node is down")
	// ErrUnknownNode reports that no node with that ID is registered.
	ErrUnknownNode = errors.New("transport: unknown node")
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("transport: closed")
)
