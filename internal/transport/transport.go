// Package transport moves wire messages between DTM clients and quorum
// nodes. Two implementations are provided: an in-process channel network
// that models the paper's 1 Gbps switched cluster by injecting per-message
// latency (used by tests, benchmarks, and the figure harness), and a real
// TCP transport (gob frames, request multiplexing, optional compression)
// for multi-process deployment via cmd/qracn-node.
package transport

import (
	"context"
	"errors"
	"sync"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

// Handler processes one request on a server node and returns the response.
// The context carries the caller's deadline and cancellation — over the
// channel transport it is the client's call context, over TCP it is a
// server-side context cancelled when the client sends a cancel frame or the
// connection drops. Handlers must be safe for concurrent use and should
// return promptly once ctx is done.
type Handler func(ctx context.Context, req *wire.Request) *wire.Response

// Client issues request/response calls to server nodes.
type Client interface {
	// Call sends req to the given node and waits for its response.
	Call(ctx context.Context, to quorum.NodeID, req *wire.Request) (*wire.Response, error)
}

// HandleBatch dispatches the sub-requests of a KindBatch request through h
// concurrently and assembles the sub-responses in matching order. Nested
// batches are rejected. When ctx is cancelled, sub-requests that have not
// started are answered with a cancelled error status instead of executing,
// and running handlers observe the cancellation through their context.
func HandleBatch(ctx context.Context, h Handler, req *wire.Request) *wire.Response {
	b := req.Batch
	if b == nil {
		return &wire.Response{Status: wire.StatusError, Detail: "batch request missing payload"}
	}
	resp := &wire.BatchResponse{Subs: make([]*wire.Response, len(b.Subs))}
	var wg sync.WaitGroup
	for i, sub := range b.Subs {
		switch {
		case sub == nil:
			resp.Subs[i] = &wire.Response{Status: wire.StatusError, Detail: "nil sub-request"}
			continue
		case sub.Kind == wire.KindBatch:
			resp.Subs[i] = &wire.Response{Status: wire.StatusError, Detail: "nested batch"}
			continue
		}
		wg.Add(1)
		go func(i int, sub *wire.Request) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				resp.Subs[i] = &wire.Response{Status: wire.StatusError, Detail: "cancelled: " + err.Error()}
				return
			}
			resp.Subs[i] = h(ctx, sub)
		}(i, sub)
	}
	wg.Wait()
	return &wire.Response{Status: wire.StatusOK, Batch: resp}
}

// Errors returned by transports.
var (
	// ErrNodeDown reports that the destination node is unreachable.
	ErrNodeDown = errors.New("transport: node is down")
	// ErrUnknownNode reports that no node with that ID is registered.
	ErrUnknownNode = errors.New("transport: unknown node")
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("transport: closed")
)
