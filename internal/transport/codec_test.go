package transport

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"qracn/internal/quorum"
	"qracn/internal/store"
	"qracn/internal/wire"
)

// TestTCPEveryCodec drives a full round trip over a real TCP connection with
// each registered codec, checking the server sniffs the client's choice and
// the payload survives intact.
func TestTCPEveryCodec(t *testing.T) {
	for _, codec := range wire.Codecs() {
		t.Run(codec.Name(), func(t *testing.T) {
			cli, stop := startTCPPair(t, func(_ context.Context, req *wire.Request) *wire.Response {
				return &wire.Response{
					Status: wire.StatusOK,
					Detail: req.TxID,
					Read:   &wire.ReadResponse{Value: store.Int64(42), Version: 7},
				}
			})
			defer stop()
			cli.SetCodec(codec)
			resp, err := cli.Call(context.Background(), 0, &wire.Request{
				Kind: wire.KindRead, TxID: "codec-" + codec.Name(),
				Read: &wire.ReadRequest{Object: store.ID("acct", 1)},
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Detail != "codec-"+codec.Name() || resp.Read.Value != store.Int64(42) {
				t.Fatalf("response mutated: %+v", resp)
			}
		})
	}
}

// TestTCPMixedCodecClients is the rollout scenario: one upgraded server,
// clients speaking different codecs concurrently. Each connection negotiates
// independently, so both must work at once.
func TestTCPMixedCodecClients(t *testing.T) {
	srv := NewTCPServer(echoHandler, false)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2*20)
	for _, codec := range wire.Codecs() {
		cli := NewTCPClient(map[quorum.NodeID]string{0: addr}, false)
		cli.SetCodec(codec)
		defer cli.Close()
		for i := 0; i < 20; i++ {
			wg.Add(1)
			go func(codec wire.Codec, i int) {
				defer wg.Done()
				txid := fmt.Sprintf("%s-%d", codec.Name(), i)
				resp, err := cli.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing, TxID: txid})
				if err != nil {
					errs <- fmt.Errorf("%s call %d: %w", codec.Name(), i, err)
					return
				}
				if resp.Detail != txid {
					errs <- fmt.Errorf("%s call %d: echoed %q", codec.Name(), i, resp.Detail)
				}
			}(codec, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTCPBinaryCompressedPayload pushes a payload past CompressThreshold
// through the binary codec so the compressed-frame path (flags bit +
// post-compression CRC) is exercised end to end.
func TestTCPBinaryCompressedPayload(t *testing.T) {
	writes := make([]store.WriteDesc, 256)
	for i := range writes {
		writes[i] = store.WriteDesc{
			ID:         store.ID("warehouse/stock", i),
			Value:      store.String("districtdistrictdistrict"),
			NewVersion: uint64(i),
		}
	}
	cli, stop := startTCPPair(t, func(_ context.Context, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK, Sync: &wire.SyncResponse{Objects: req.Prepare.Writes}}
	})
	defer stop()
	cli.SetCodec(wire.Binary)
	resp, err := cli.Call(context.Background(), 0, &wire.Request{
		Kind: wire.KindPrepare, TxID: "big",
		Prepare: &wire.PrepareRequest{Writes: writes},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Sync.Objects, writes) {
		t.Fatalf("%d writes round-tripped wrong", len(resp.Sync.Objects))
	}
}

// TestChannelCodecMode checks the channel network's serializing mode: with a
// Codec configured, messages cross the boundary via encode/decode instead of
// Clone — mutation isolation still holds and payloads are preserved.
func TestChannelCodecMode(t *testing.T) {
	for _, codec := range wire.Codecs() {
		t.Run(codec.Name(), func(t *testing.T) {
			var got *wire.Request
			n := NewChannelNetwork(ChannelConfig{Codec: codec})
			n.Register(3, func(_ context.Context, req *wire.Request) *wire.Response {
				got = req
				req.TxID = "mutated-server-side"
				return &wire.Response{Status: wire.StatusOK, Read: &wire.ReadResponse{Value: store.Int64(9), Version: 1}}
			})
			req := &wire.Request{
				Kind: wire.KindRead, TxID: "iso",
				Read: &wire.ReadRequest{Object: store.ID("acct", 5), Validate: []store.ReadDesc{{ID: "x", Version: 2}}},
			}
			resp, err := n.Call(context.Background(), 3, req)
			if err != nil {
				t.Fatal(err)
			}
			if req.TxID != "iso" {
				t.Fatal("server-side mutation leaked back to the caller")
			}
			if got == req || got.Read == req.Read {
				t.Fatal("request crossed the boundary by reference")
			}
			if resp.Read.Value != store.Int64(9) || resp.Read.Version != 1 {
				t.Fatalf("response mutated: %+v", resp.Read)
			}
		})
	}
}

// TestChannelCodecModeConcurrent hammers one destination's pipe from many
// goroutines: the per-pipe lock must serialize encode/decode pairs without
// cross-talk between calls.
func TestChannelCodecModeConcurrent(t *testing.T) {
	n := NewChannelNetwork(ChannelConfig{Codec: wire.Binary})
	n.Register(0, echoHandler)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			txid := fmt.Sprintf("tx-%d", i)
			resp, err := n.Call(context.Background(), 0, &wire.Request{Kind: wire.KindPing, TxID: txid})
			if err != nil {
				errs <- err
				return
			}
			if resp.Detail != txid {
				errs <- fmt.Errorf("call %d got %q", i, resp.Detail)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
