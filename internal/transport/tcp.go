package transport

import (
	"context"
	"fmt"
	"net"
	"sync"

	"qracn/internal/quorum"
	"qracn/internal/wire"
)

// TCPServer serves a node's handler over a TCP listener using the wire
// envelope protocol. Each connection multiplexes concurrent requests by
// sequence number.
type TCPServer struct {
	handler  Handler
	compress bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewTCPServer wraps a handler for TCP serving.
func NewTCPServer(h Handler, compress bool) *TCPServer {
	return &TCPServer{handler: h, compress: compress, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr (e.g. ":7450" or "127.0.0.1:0") and starts accepting in
// a background goroutine. It returns the bound address.
func (s *TCPServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	var handlerWG sync.WaitGroup
	defer handlerWG.Wait()
	for {
		env, err := wire.ReadEnvelope(conn)
		if err != nil {
			return
		}
		if env.Req == nil {
			continue // ignore malformed envelopes
		}
		handlerWG.Add(1)
		go func(env *wire.Envelope) {
			defer handlerWG.Done()
			resp := s.handler(env.Req)
			out := &wire.Envelope{Seq: env.Seq, IsResponse: true, Resp: resp}
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = wire.WriteEnvelope(conn, out, s.compress)
		}(env)
	}
}

// Close stops the listener and all connections, waiting for in-flight
// handlers to finish.
func (s *TCPServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// TCPClient maps node IDs to TCP addresses and maintains one multiplexed
// connection per node, dialed lazily and re-dialed after failures.
type TCPClient struct {
	addrs    map[quorum.NodeID]string
	compress bool

	mu     sync.Mutex
	conns  map[quorum.NodeID]*tcpConn
	closed bool
}

type tcpConn struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan *wire.Response
	dead    bool
}

// NewTCPClient creates a client for the given node address map.
func NewTCPClient(addrs map[quorum.NodeID]string, compress bool) *TCPClient {
	m := make(map[quorum.NodeID]string, len(addrs))
	for k, v := range addrs {
		m[k] = v
	}
	return &TCPClient{addrs: m, compress: compress, conns: make(map[quorum.NodeID]*tcpConn)}
}

func (c *TCPClient) getConn(to quorum.NodeID) (*tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if tc, ok := c.conns[to]; ok && !tc.isDead() {
		return tc, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, ErrUnknownNode
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrNodeDown, addr, err)
	}
	tc := &tcpConn{conn: conn, pending: make(map[uint64]chan *wire.Response)}
	c.conns[to] = tc
	go tc.readLoop()
	return tc, nil
}

func (tc *tcpConn) isDead() bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.dead
}

func (tc *tcpConn) readLoop() {
	for {
		env, err := wire.ReadEnvelope(tc.conn)
		if err != nil {
			tc.fail()
			return
		}
		if !env.IsResponse {
			continue
		}
		tc.mu.Lock()
		ch, ok := tc.pending[env.Seq]
		if ok {
			delete(tc.pending, env.Seq)
		}
		tc.mu.Unlock()
		if ok {
			ch <- env.Resp
		}
	}
}

// fail marks the connection dead and unblocks all waiters.
func (tc *tcpConn) fail() {
	tc.conn.Close()
	tc.mu.Lock()
	tc.dead = true
	pending := tc.pending
	tc.pending = make(map[uint64]chan *wire.Response)
	tc.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Call implements Client.
func (c *TCPClient) Call(ctx context.Context, to quorum.NodeID, req *wire.Request) (*wire.Response, error) {
	tc, err := c.getConn(to)
	if err != nil {
		return nil, err
	}

	ch := make(chan *wire.Response, 1)
	tc.mu.Lock()
	if tc.dead {
		tc.mu.Unlock()
		return nil, ErrNodeDown
	}
	seq := tc.nextSeq
	tc.nextSeq++
	tc.pending[seq] = ch
	tc.mu.Unlock()

	env := &wire.Envelope{Seq: seq, Req: req}
	tc.writeMu.Lock()
	err = wire.WriteEnvelope(tc.conn, env, c.compress)
	tc.writeMu.Unlock()
	if err != nil {
		tc.fail()
		return nil, fmt.Errorf("%w: write: %v", ErrNodeDown, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrNodeDown
		}
		return resp, nil
	case <-ctx.Done():
		tc.mu.Lock()
		delete(tc.pending, seq)
		tc.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Close tears down all connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = make(map[quorum.NodeID]*tcpConn)
	c.mu.Unlock()
	for _, tc := range conns {
		tc.fail()
	}
}

var _ Client = (*TCPClient)(nil)
