package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qracn/internal/backoff"
	"qracn/internal/quorum"
	"qracn/internal/wire"
)

// Both directions of a TCP connection run one persistent wire codec stream
// (for gob, type metadata is paid once per connection instead of per
// message; for binary, the encode scratch buffers are reused across frames)
// behind a single writer goroutine that coalesces queued envelopes into one
// buffered write + flush, so pipelined requests share syscalls.
//
// The codec is chosen by the CLIENT per connection: it writes the wire
// negotiation preamble (nothing for gob, [magic, id] otherwise) before its
// first frame, and the server sniffs it and answers in the same codec — so
// a mixed-codec cluster keeps working during a rollout.

// outBufSize is the buffered-writer size of the coalescing writer.
const outBufSize = 32 << 10

// outQueueLen is the outbound envelope queue depth per connection.
const outQueueLen = 128

// writeLoop drains the outbound queue into the stream encoder. Envelopes
// already queued when one finishes encoding are encoded into the same
// buffered write before the flush. It exits when stop closes or a write
// fails; the caller's deferred cleanup unblocks any remaining senders.
func writeLoop(enc wire.EnvelopeEncoder, bw *bufio.Writer, out <-chan *wire.Envelope, stop <-chan struct{}) {
	for {
		var env *wire.Envelope
		select {
		case env = <-out:
		case <-stop:
			return
		}
		for env != nil {
			if err := enc.Encode(env); err != nil {
				return
			}
			select {
			case env = <-out:
			default:
				env = nil
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// TCPServer serves a node's handler over a TCP listener using the wire
// stream codec. Each connection multiplexes concurrent requests by sequence
// number; every request runs under a context cancelled when the client sends
// a cancel frame or the connection goes away.
type TCPServer struct {
	handler  Handler
	compress bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewTCPServer wraps a handler for TCP serving.
func NewTCPServer(h Handler, compress bool) *TCPServer {
	return &TCPServer{handler: h, compress: compress, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr (e.g. ":7450" or "127.0.0.1:0") and starts accepting in
// a background goroutine. It returns the bound address.
func (s *TCPServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()

	// Negotiate the connection's codec before anything else: the client
	// declares it in a preamble ahead of its first frame (legacy gob sends
	// none), and the server answers in kind. An idle connection blocked
	// here is no different from one blocked on its first frame; Close()
	// closing the conn unblocks both.
	codec, cr, err := wire.SniffCodec(conn)
	if err != nil {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		return
	}

	// Per-connection context: every request context derives from it, so a
	// dropped connection (or server shutdown closing the conn) cancels all
	// in-flight handlers.
	connCtx, connCancel := context.WithCancel(context.Background())
	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }

	out := make(chan *wire.Envelope, outQueueLen)
	bw := bufio.NewWriterSize(conn, outBufSize)
	enc := codec.NewEncoder(bw, s.compress)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		defer closeStop()
		writeLoop(enc, bw, out, stop)
	}()

	var handlerWG sync.WaitGroup
	var inflightMu sync.Mutex
	inflight := make(map[uint64]context.CancelFunc)

	defer func() {
		conn.Close()
		connCancel()
		handlerWG.Wait()
		closeStop()
		writerWG.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	dec := codec.NewDecoder(cr)
	for {
		env, err := dec.Decode()
		if err != nil {
			return
		}
		if env.Cancel {
			inflightMu.Lock()
			if cancel, ok := inflight[env.Seq]; ok {
				cancel()
			}
			inflightMu.Unlock()
			continue
		}
		if env.Req == nil {
			continue // ignore malformed envelopes
		}
		reqCtx, cancel := context.WithCancel(connCtx)
		inflightMu.Lock()
		inflight[env.Seq] = cancel
		inflightMu.Unlock()
		handlerWG.Add(1)
		go func(env *wire.Envelope, reqCtx context.Context, cancel context.CancelFunc) {
			defer handlerWG.Done()
			resp := s.handler(reqCtx, env.Req)
			inflightMu.Lock()
			delete(inflight, env.Seq)
			inflightMu.Unlock()
			cancel()
			// A cancelled caller has stopped waiting; the response is still
			// written (it is cheap) and dropped client-side by seq lookup.
			select {
			case out <- &wire.Envelope{Seq: env.Seq, IsResponse: true, Resp: resp}:
			case <-stop:
			}
		}(env, reqCtx, cancel)
	}
}

// Close stops the listener and all connections, waiting for in-flight
// handlers to finish.
func (s *TCPServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// RetryPolicy shapes the TCP client's reconnect behaviour: a call that hits
// a dead connection re-dials and retries up to MaxRetries times with capped
// exponential backoff instead of failing outright.
type RetryPolicy struct {
	// MaxRetries bounds reconnect attempts per call (0 keeps the default 3;
	// negative disables retries).
	MaxRetries int
	// BackoffBase/BackoffMax shape the exponential backoff between attempts
	// (defaults 2ms / 200ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 2 * time.Millisecond
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 200 * time.Millisecond
	}
}

// TCPClient maps node IDs to TCP addresses and maintains one multiplexed
// connection per node, dialed lazily and re-dialed with backoff after
// failures.
type TCPClient struct {
	addrs    map[quorum.NodeID]string
	compress bool
	codec    wire.Codec
	retry    RetryPolicy

	retries   atomic.Uint64
	retrySink atomic.Pointer[atomic.Uint64]

	mu     sync.Mutex
	conns  map[quorum.NodeID]*tcpConn
	closed bool
}

type tcpConn struct {
	conn net.Conn
	out  chan *wire.Envelope
	stop chan struct{}

	mu       sync.Mutex
	stopDone bool
	nextSeq  uint64
	pending  map[uint64]chan *wire.Response
	dead     bool
	// failKind records why the connection died (conn-lost vs. decode) so
	// waiters surface a classified error.
	failKind ErrKind
}

// NewTCPClient creates a client for the given node address map.
func NewTCPClient(addrs map[quorum.NodeID]string, compress bool) *TCPClient {
	m := make(map[quorum.NodeID]string, len(addrs))
	for k, v := range addrs {
		m[k] = v
	}
	c := &TCPClient{addrs: m, compress: compress, codec: wire.DefaultCodec,
		conns: make(map[quorum.NodeID]*tcpConn)}
	c.retry.fillDefaults()
	return c
}

// SetRetryPolicy replaces the reconnect policy. Not safe to call
// concurrently with Call.
func (c *TCPClient) SetRetryPolicy(p RetryPolicy) {
	p.fillDefaults()
	c.retry = p
}

// SetCodec picks the wire codec for connections dialed after the call
// (existing connections keep the codec they negotiated). Not safe to call
// concurrently with Call. The default is wire.DefaultCodec.
func (c *TCPClient) SetCodec(codec wire.Codec) {
	if codec != nil {
		c.codec = codec
	}
}

// Retries reports how many reconnect attempts the client has made.
func (c *TCPClient) Retries() uint64 { return c.retries.Load() }

// SetRetryCounter mirrors every reconnect attempt into an external counter
// (e.g. a dtm.Metrics field), in addition to the internal one.
func (c *TCPClient) SetRetryCounter(u *atomic.Uint64) { c.retrySink.Store(u) }

func (c *TCPClient) countRetry() {
	c.retries.Add(1)
	if s := c.retrySink.Load(); s != nil {
		s.Add(1)
	}
}

func (c *TCPClient) getConn(to quorum.NodeID) (*tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if tc, ok := c.conns[to]; ok && !tc.isDead() {
		return tc, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, ErrUnknownNode
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &Error{Kind: ErrKindDial, Node: to,
			Err: fmt.Errorf("%w: dial %s: %v", ErrNodeDown, addr, err)}
	}
	tc := &tcpConn{
		conn:    conn,
		out:     make(chan *wire.Envelope, outQueueLen),
		stop:    make(chan struct{}),
		pending: make(map[uint64]chan *wire.Response),
	}
	c.conns[to] = tc
	bw := bufio.NewWriterSize(conn, outBufSize)
	// The negotiation preamble goes through the buffered writer, so it
	// coalesces into the same packet as the first frame.
	if err := wire.WritePreamble(bw, c.codec); err != nil {
		conn.Close()
		delete(c.conns, to)
		return nil, &Error{Kind: ErrKindDial, Node: to,
			Err: fmt.Errorf("%w: preamble to %s: %v", ErrNodeDown, addr, err)}
	}
	enc := c.codec.NewEncoder(bw, c.compress)
	go func() {
		defer tc.fail()
		writeLoop(enc, bw, tc.out, tc.stop)
	}()
	go tc.readLoop(c.codec.NewDecoder(conn))
	return tc, nil
}

func (tc *tcpConn) isDead() bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.dead
}

func (tc *tcpConn) readLoop(dec wire.EnvelopeDecoder) {
	for {
		env, err := dec.Decode()
		if err != nil {
			tc.failWith(streamFailKind(err))
			return
		}
		if !env.IsResponse {
			continue
		}
		tc.mu.Lock()
		ch, ok := tc.pending[env.Seq]
		if ok {
			delete(tc.pending, env.Seq)
		}
		tc.mu.Unlock()
		if ok {
			ch <- env.Resp
		}
	}
}

// fail marks the connection dead, stops the writer, and unblocks all
// waiters. Idempotent.
func (tc *tcpConn) fail() { tc.failWith(ErrKindConnLost) }

func (tc *tcpConn) failWith(kind ErrKind) {
	tc.conn.Close()
	tc.mu.Lock()
	if tc.dead && tc.stopDone {
		tc.mu.Unlock()
		return
	}
	if !tc.dead {
		tc.dead = true
		tc.failKind = kind
	}
	if !tc.stopDone {
		tc.stopDone = true
		close(tc.stop)
	}
	pending := tc.pending
	tc.pending = make(map[uint64]chan *wire.Response)
	tc.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// deadErr builds the classified error for a dead connection.
func (tc *tcpConn) deadErr(node quorum.NodeID) error {
	tc.mu.Lock()
	kind := tc.failKind
	tc.mu.Unlock()
	if kind == ErrKindUnknown {
		kind = ErrKindConnLost
	}
	return &Error{Kind: kind, Node: node, Err: ErrNodeDown}
}

// roundTrip sends one request on this connection and waits for its response.
// It returns ErrNodeDown-wrapped errors when the connection died, which the
// caller treats as retriable.
func (tc *tcpConn) roundTrip(ctx context.Context, node quorum.NodeID, req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	tc.mu.Lock()
	if tc.dead {
		tc.mu.Unlock()
		return nil, tc.deadErr(node)
	}
	seq := tc.nextSeq
	tc.nextSeq++
	tc.pending[seq] = ch
	tc.mu.Unlock()

	drop := func() {
		tc.mu.Lock()
		delete(tc.pending, seq)
		tc.mu.Unlock()
	}

	select {
	case tc.out <- &wire.Envelope{Seq: seq, Req: req}:
	case <-tc.stop:
		drop()
		return nil, tc.deadErr(node)
	case <-ctx.Done():
		drop()
		return nil, classify(node, ErrKindUnknown, ctx.Err())
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, tc.deadErr(node)
		}
		return resp, nil
	case <-ctx.Done():
		drop()
		// Tell the server to cancel the in-flight request (best effort; a
		// full queue or dead connection makes it moot).
		select {
		case tc.out <- &wire.Envelope{Seq: seq, Cancel: true}:
		default:
		}
		return nil, classify(node, ErrKindUnknown, ctx.Err())
	}
}

// Call implements Client. A dead connection is re-dialed with capped
// exponential backoff up to the retry policy's budget before the call fails.
func (c *TCPClient) Call(ctx context.Context, to quorum.NodeID, req *wire.Request) (*wire.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.countRetry()
			if err := c.sleepBackoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		tc, err := c.getConn(to)
		if err != nil {
			if errors.Is(err, ErrUnknownNode) || errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
		} else {
			resp, err := tc.roundTrip(ctx, to, req)
			if err == nil {
				return resp, nil
			}
			if ctx.Err() != nil {
				return nil, classify(to, ErrKindUnknown, ctx.Err())
			}
			lastErr = err
		}
		if attempt >= c.retry.MaxRetries {
			return nil, lastErr
		}
	}
}

func (c *TCPClient) sleepBackoff(ctx context.Context, attempt int) error {
	p := backoff.Policy{Base: c.retry.BackoffBase, Max: c.retry.BackoffMax}
	return backoff.Sleep(ctx, p.Delay(attempt-1))
}

// Close tears down all connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = make(map[quorum.NodeID]*tcpConn)
	c.mu.Unlock()
	for _, tc := range conns {
		tc.fail()
	}
}

var _ Client = (*TCPClient)(nil)
