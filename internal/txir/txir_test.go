package txir

import (
	"strings"
	"testing"

	"qracn/internal/store"
)

// transferProgram is the paper's running Bank example (Fig. 1): read two
// branches and two accounts, withdraw/deposit on each.
func transferProgram() *Program {
	p := NewProgram("transfer")
	p.ReadP("branch", "b1", "srcBranch")
	p.ReadP("branch", "b2", "dstBranch")
	p.Local(func(e *Env) error {
		e.SetInt64("nb1", e.GetInt64("b1")-e.GetInt64("amt"))
		return nil
	}, []Var{"b1", "amt"}, []Var{"nb1"})
	p.WriteP("branch", "nb1", "srcBranch")
	return p
}

func TestBuilderIndices(t *testing.T) {
	p := transferProgram()
	for i, s := range p.Stmts {
		if s.Index != i {
			t.Fatalf("stmt %d has Index %d", i, s.Index)
		}
	}
	if len(p.Stmts) != 4 {
		t.Fatalf("len = %d", len(p.Stmts))
	}
}

func TestValidateOK(t *testing.T) {
	p := transferProgram()
	// "amt" is used before definition — define it via a Local preamble.
	p2 := NewProgram("transfer2")
	p2.Local(func(e *Env) error {
		e.SetInt64("amt", int64(e.ParamInt("amount")))
		return nil
	}, nil, []Var{"amt"})
	for _, s := range p.Stmts {
		p2.add(&Stmt{Kind: s.Kind, Class: s.Class, RefKey: s.RefKey, Ref: s.Ref,
			Dst: s.Dst, Src: s.Src, Fn: s.Fn, Reads: s.Reads, Writes: s.Writes, RefVars: s.RefVars})
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateUndefinedVar(t *testing.T) {
	p := transferProgram() // uses "amt" which is never defined
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), `"amt"`) {
		t.Fatalf("err = %v, want undefined-variable error for amt", err)
	}
}

func TestValidateMissingRef(t *testing.T) {
	p := NewProgram("bad")
	p.add(&Stmt{Kind: KindRead, Class: "c", Dst: "x"})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no Ref") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateMissingClass(t *testing.T) {
	p := NewProgram("bad")
	p.add(&Stmt{Kind: KindRead, Ref: func(*Env) store.ObjectID { return "x" }, Dst: "x"})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no Class") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateMissingFn(t *testing.T) {
	p := NewProgram("bad")
	p.add(&Stmt{Kind: KindLocal, Writes: []Var{"x"}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no Fn") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateUnnamedDef(t *testing.T) {
	p := NewProgram("bad")
	p.add(&Stmt{Kind: KindLocal, Fn: func(*Env) error { return nil }, Writes: []Var{""}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unnamed") {
		t.Fatalf("err = %v", err)
	}
}

func TestRefFromParams(t *testing.T) {
	p := NewProgram("p")
	s := p.ReadP("district", "d", "w", "d")
	env := NewEnv(map[string]any{"w": 3, "d": 7})
	if got := s.Ref(env); got != "district/3/7" {
		t.Fatalf("Ref = %q", got)
	}
	if s.ObjKey() != "district(w,d)" {
		t.Fatalf("ObjKey = %q", s.ObjKey())
	}
}

func TestUsesDefsVars(t *testing.T) {
	p := NewProgram("p")
	r := p.Read("c", "k", func(e *Env) store.ObjectID { return store.ID("c", e.GetInt64("k")) }, "dst", "k")
	w := p.Write("c", "k", func(e *Env) store.ObjectID { return "c/1" }, "src", "k")
	l := p.Local(func(*Env) error { return nil }, []Var{"a"}, []Var{"b"})

	if got := r.UsesVars(); len(got) != 1 || got[0] != "k" {
		t.Fatalf("read uses = %v", got)
	}
	if got := r.DefsVars(); len(got) != 1 || got[0] != "dst" {
		t.Fatalf("read defs = %v", got)
	}
	if got := w.UsesVars(); len(got) != 2 || got[0] != "k" || got[1] != "src" {
		t.Fatalf("write uses = %v", got)
	}
	if got := w.DefsVars(); got != nil {
		t.Fatalf("write defs = %v", got)
	}
	if got := l.UsesVars(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("local uses = %v", got)
	}
	if got := l.DefsVars(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("local defs = %v", got)
	}
}

func TestLocalObjKeyEmpty(t *testing.T) {
	p := NewProgram("p")
	l := p.Local(func(*Env) error { return nil }, nil, []Var{"x"})
	if l.ObjKey() != "" {
		t.Fatalf("local ObjKey = %q", l.ObjKey())
	}
}

func TestStringRendering(t *testing.T) {
	p := transferProgram()
	out := p.String()
	for _, want := range []string{"program transfer", "read branch(srcBranch)", "write branch(srcBranch)", "local"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
	if KindRead.String() != "read" || KindWrite.String() != "write" || KindLocal.String() != "local" {
		t.Fatal("Kind.String broken")
	}
}

func TestEnvAccessors(t *testing.T) {
	e := NewEnv(map[string]any{"n": 5, "n64": int64(6), "s": "hi"})
	if e.ParamInt("n") != 5 || e.ParamInt("n64") != 6 || e.ParamStr("s") != "hi" {
		t.Fatal("param accessors broken")
	}
	if e.Param("missing") != nil {
		t.Fatal("missing param should be nil")
	}
	e.SetInt64("v", 9)
	if e.GetInt64("v") != 9 {
		t.Fatal("var accessors broken")
	}
	if e.Get("unset") != nil || e.GetInt64("unset") != 0 {
		t.Fatal("unset var should be nil/0")
	}
	e.Set("raw", store.String("x"))
	if store.AsString(e.Get("raw")) != "x" {
		t.Fatal("Set/Get broken")
	}
}

func TestEnvPanicsOnBadParams(t *testing.T) {
	e := NewEnv(map[string]any{"s": "str"})
	for _, fn := range []func(){
		func() { e.ParamInt("missing") },
		func() { e.ParamInt("s") },
		func() { e.ParamStr("missing") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	e2 := NewEnv(map[string]any{"n": 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for mistyped string param")
			}
		}()
		e2.ParamStr("n")
	}()
}

func TestNilParamsEnv(t *testing.T) {
	e := NewEnv(nil)
	if e.Param("x") != nil {
		t.Fatal("nil-params env should return nil")
	}
}
