package txir

import (
	"fmt"

	"qracn/internal/store"
)

// Env holds one transaction invocation's state: immutable parameters fixed
// before the first attempt (including any random draws, so re-executions are
// deterministic) and the private variables statements define.
type Env struct {
	params map[string]any
	vars   map[Var]store.Value
}

// NewEnv creates an environment over the given parameters.
func NewEnv(params map[string]any) *Env {
	if params == nil {
		params = map[string]any{}
	}
	return &Env{params: params, vars: make(map[Var]store.Value)}
}

// Param returns a parameter value (nil if absent).
func (e *Env) Param(name string) any { return e.params[name] }

// ParamInt returns an integer parameter; it panics on a missing or
// mistyped parameter, which is a workload programming error.
func (e *Env) ParamInt(name string) int {
	v, ok := e.params[name]
	if !ok {
		panic(fmt.Sprintf("txir: missing parameter %q", name))
	}
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	default:
		panic(fmt.Sprintf("txir: parameter %q is %T, want int", name, v))
	}
}

// ParamStr returns a string parameter.
func (e *Env) ParamStr(name string) string {
	v, ok := e.params[name]
	if !ok {
		panic(fmt.Sprintf("txir: missing parameter %q", name))
	}
	s, ok := v.(string)
	if !ok {
		panic(fmt.Sprintf("txir: parameter %q is %T, want string", name, v))
	}
	return s
}

// Get returns a variable's current value (nil if never set).
func (e *Env) Get(v Var) store.Value { return e.vars[v] }

// GetInt64 returns a variable as int64 (0 for nil).
func (e *Env) GetInt64(v Var) int64 { return store.AsInt64(e.vars[v]) }

// Set assigns a variable.
func (e *Env) Set(v Var, val store.Value) { e.vars[v] = val }

// SetInt64 assigns an integer variable.
func (e *Env) SetInt64(v Var, val int64) { e.vars[v] = store.Int64(val) }

// SnapshotVars deep-copies the variable bindings — the per-checkpoint state
// save of the checkpointing rollback mechanism (its cost is the overhead the
// paper's closed-nesting approach avoids).
func (e *Env) SnapshotVars() map[Var]store.Value {
	out := make(map[Var]store.Value, len(e.vars))
	for k, v := range e.vars {
		if v != nil {
			out[k] = v.CloneValue()
		} else {
			out[k] = nil
		}
	}
	return out
}

// RestoreVars replaces the variable bindings with a snapshot taken by
// SnapshotVars. The snapshot is copied again so it can be restored to more
// than once.
func (e *Env) RestoreVars(snap map[Var]store.Value) {
	e.vars = make(map[Var]store.Value, len(snap))
	for k, v := range snap {
		if v != nil {
			e.vars[k] = v.CloneValue()
		} else {
			e.vars[k] = nil
		}
	}
}
