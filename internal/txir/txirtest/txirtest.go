// Package txirtest generates random, valid transaction programs for
// property-based testing of the static analysis, the recomposition
// algorithm, and the executors. Generated programs are pure functions of
// the initial shared state: every local computation is deterministic
// arithmetic, so two executions from equal states must commit equal states.
package txirtest

import (
	"fmt"
	"math/rand"

	"qracn/internal/store"
	"qracn/internal/txir"
)

// DerivedFanout bounds the key space of "insert" statements: a derived
// object's ID is ("derived", stmtIndex, k) with k < DerivedFanout.
const DerivedFanout = 3

// RandomProgram builds a random straight-line transaction over nObjects
// shared integers: reads, re-reads, deterministic arithmetic locals,
// parameter-free (floating) locals, write-backs, and inserts of derived
// objects. The program always starts with a read, so it has at least one
// UnitBlock.
func RandomProgram(rng *rand.Rand, nObjects, nStmts int) *txir.Program {
	p := txir.NewProgram(fmt.Sprintf("rand-%d", rng.Int63()))

	readObjs := make([]bool, nObjects)
	var intVars []txir.Var
	varSeq := 0

	newVar := func() txir.Var {
		varSeq++
		return txir.Var(fmt.Sprintf("v%d", varSeq))
	}
	objRef := func(i int) (string, string, txir.RefFunc) {
		id := store.ID("obj", i)
		return "obj", fmt.Sprintf("k%d", i), func(*txir.Env) store.ObjectID { return id }
	}

	first := rng.Intn(nObjects)
	cls, key, ref := objRef(first)
	v := newVar()
	p.Read(cls, key, ref, v)
	readObjs[first] = true
	intVars = append(intVars, v)

	for s := 1; s < nStmts; s++ {
		switch rng.Intn(5) {
		case 0: // read (possibly a re-read)
			i := rng.Intn(nObjects)
			cls, key, ref := objRef(i)
			v := newVar()
			p.Read(cls, key, ref, v)
			readObjs[i] = true
			intVars = append(intVars, v)
		case 1: // local: combine 1..3 vars deterministically
			k := 1 + rng.Intn(3)
			uses := make([]txir.Var, 0, k)
			for j := 0; j < k; j++ {
				uses = append(uses, intVars[rng.Intn(len(intVars))])
			}
			mult := int64(1 + rng.Intn(5))
			out := newVar()
			usesCopy := append([]txir.Var(nil), uses...)
			p.Local(func(e *txir.Env) error {
				var acc int64
				for _, u := range usesCopy {
					acc += e.GetInt64(u)
				}
				e.SetInt64(out, acc*mult+1)
				return nil
			}, usesCopy, []txir.Var{out})
			intVars = append(intVars, out)
		case 2: // constant local: no shared-object dependency (floats)
			c := int64(rng.Intn(100))
			out := newVar()
			p.Local(func(e *txir.Env) error {
				e.SetInt64(out, c)
				return nil
			}, nil, []txir.Var{out})
			intVars = append(intVars, out)
		case 3: // write an already-read object from an existing var
			var candidates []int
			for i, read := range readObjs {
				if read {
					candidates = append(candidates, i)
				}
			}
			i := candidates[rng.Intn(len(candidates))]
			cls, key, ref := objRef(i)
			p.Write(cls, key, ref, intVars[rng.Intn(len(intVars))])
		case 4: // insert a fresh derived object
			src := intVars[rng.Intn(len(intVars))]
			id := store.ID("derived", s, rng.Intn(DerivedFanout))
			p.Write("derived", fmt.Sprintf("d%d", s),
				func(*txir.Env) store.ObjectID { return id }, src)
		}
	}
	return p
}

// Seed returns the initial state RandomProgram programs run over.
func Seed(nObjects int) map[store.ObjectID]store.Value {
	objs := make(map[store.ObjectID]store.Value, nObjects)
	for i := 0; i < nObjects; i++ {
		objs[store.ID("obj", i)] = store.Int64(int64(10 + i))
	}
	return objs
}
