package txirtest

import (
	"math/rand"
	"testing"

	"qracn/internal/txir"
)

// TestGeneratedProgramsAlwaysValid: the generator must only emit programs
// that pass the IR's variable-discipline validation.
func TestGeneratedProgramsAlwaysValid(t *testing.T) {
	for trial := 0; trial < 500; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		p := RandomProgram(rng, 1+rng.Intn(8), 1+rng.Intn(25))
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		if len(p.Stmts) == 0 || p.Stmts[0].Kind != txir.KindRead {
			t.Fatalf("trial %d: program must start with a read", trial)
		}
	}
}

// TestGeneratedProgramsAreDeterministic: executing the same program's local
// functions twice over equal inputs yields equal outputs (the property the
// equivalence suite relies on).
func TestGeneratedProgramsAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := RandomProgram(rng, 4, 15)
	run := func() map[txir.Var]int64 {
		env := txir.NewEnv(nil)
		// Feed reads with deterministic pseudo-values.
		next := int64(5)
		for _, s := range p.Stmts {
			switch s.Kind {
			case txir.KindRead:
				env.SetInt64(s.Dst, next)
				next = next*3 + 1
			case txir.KindLocal:
				if err := s.Fn(env); err != nil {
					t.Fatal(err)
				}
			}
		}
		out := map[txir.Var]int64{}
		for _, s := range p.Stmts {
			for _, v := range s.DefsVars() {
				out[v] = env.GetInt64(v)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs diverged in shape")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("var %s diverged: %d vs %d", k, v, b[k])
		}
	}
}

func TestSeedShape(t *testing.T) {
	objs := Seed(5)
	if len(objs) != 5 {
		t.Fatalf("seeded %d", len(objs))
	}
}
