// Package txir defines the transaction intermediate representation ACN's
// static analysis consumes. The paper analyses Java bytecode with Soot; this
// reproduction expresses a transaction's business logic as a straight-line
// program of Read / Write / Local statements with declared variable uses and
// definitions, which carries exactly the information Soot's UnitGraph
// provides to ACN: where the remote object accesses are, how values flow
// between statements, and which statements are independent.
package txir

import (
	"fmt"
	"strings"

	"qracn/internal/store"
)

// Var names a transaction-local (private) variable.
type Var string

// Kind discriminates statement types.
type Kind int

// Statement kinds.
const (
	// KindRead fetches a shared object into a variable. The first read of
	// an object is a remote interaction (it defines a UnitBlock); re-reads
	// are served from the transaction's private read-set.
	KindRead Kind = iota
	// KindWrite buffers a variable's value as the new state of a shared
	// object.
	KindWrite
	// KindLocal is a pure local computation over declared variables.
	KindLocal
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	default:
		return "local"
	}
}

// RefFunc resolves the concrete object a statement touches for one
// transaction invocation (object identity may depend on Env parameters and
// variables).
type RefFunc func(*Env) store.ObjectID

// LocalFunc is a local computation. It must be a pure function of its
// declared read variables (and Env parameters): sub-transaction retries
// re-execute it, so any hidden state would corrupt the partial-rollback
// semantics.
type LocalFunc func(*Env) error

// Stmt is one statement of a transaction program.
type Stmt struct {
	// Index is the statement's position in the program.
	Index int
	Kind  Kind

	// Class labels the object class a Read/Write touches (e.g. "district").
	// It is used for diagnostics and contention reporting.
	Class string
	// RefKey identifies the reference expression; two object statements
	// with equal Class and RefKey are assumed to touch the same object
	// (conservative may-alias rule), different keys are assumed disjoint.
	RefKey string
	// Ref computes the concrete object ID at run time.
	Ref RefFunc
	// RefVars lists the variables Ref consults (data dependencies of the
	// access itself).
	RefVars []Var

	// Dst receives the value on a Read.
	Dst Var
	// Src supplies the value on a Write.
	Src Var

	// Fn is the computation of a Local statement.
	Fn LocalFunc
	// Reads/Writes declare the variables a Local consumes and defines.
	Reads  []Var
	Writes []Var
}

// UsesVars returns every variable the statement consumes.
func (s *Stmt) UsesVars() []Var {
	switch s.Kind {
	case KindRead:
		return s.RefVars
	case KindWrite:
		out := make([]Var, 0, len(s.RefVars)+1)
		out = append(out, s.RefVars...)
		out = append(out, s.Src)
		return out
	default:
		return s.Reads
	}
}

// DefsVars returns every variable the statement defines.
func (s *Stmt) DefsVars() []Var {
	switch s.Kind {
	case KindRead:
		return []Var{s.Dst}
	case KindWrite:
		return nil
	default:
		return s.Writes
	}
}

// ObjKey returns the may-alias key for object statements ("" for locals).
func (s *Stmt) ObjKey() string {
	if s.Kind == KindLocal {
		return ""
	}
	return s.Class + "(" + s.RefKey + ")"
}

func (s *Stmt) String() string {
	switch s.Kind {
	case KindRead:
		return fmt.Sprintf("[%d] %s = read %s", s.Index, s.Dst, s.ObjKey())
	case KindWrite:
		return fmt.Sprintf("[%d] write %s <- %s", s.Index, s.ObjKey(), s.Src)
	default:
		return fmt.Sprintf("[%d] local defs=%v uses=%v", s.Index, s.Writes, s.Reads)
	}
}

// Program is a straight-line transaction.
type Program struct {
	Name  string
	Stmts []*Stmt
}

// NewProgram starts building a program.
func NewProgram(name string) *Program {
	return &Program{Name: name}
}

func (p *Program) add(s *Stmt) *Stmt {
	s.Index = len(p.Stmts)
	p.Stmts = append(p.Stmts, s)
	return s
}

// Read appends a read of the object identified by ref into dst. refKey must
// identify the reference expression (see Stmt.RefKey); refVars list the
// variables ref consults.
func (p *Program) Read(class, refKey string, ref RefFunc, dst Var, refVars ...Var) *Stmt {
	return p.add(&Stmt{Kind: KindRead, Class: class, RefKey: refKey, Ref: ref, Dst: dst, RefVars: refVars})
}

// ReadP appends a read whose object ID is derived from Env parameters:
// store.ID(class, params...). The RefKey is derived from the parameter
// names, so two statements reading class with the same parameters alias.
func (p *Program) ReadP(class string, dst Var, params ...string) *Stmt {
	return p.Read(class, strings.Join(params, ","), refFromParams(class, params), dst)
}

// Write appends a write of src's value to the object identified by ref.
func (p *Program) Write(class, refKey string, ref RefFunc, src Var, refVars ...Var) *Stmt {
	return p.add(&Stmt{Kind: KindWrite, Class: class, RefKey: refKey, Ref: ref, Src: src, RefVars: refVars})
}

// WriteP appends a write whose object ID is derived from Env parameters.
func (p *Program) WriteP(class string, src Var, params ...string) *Stmt {
	return p.Write(class, strings.Join(params, ","), refFromParams(class, params), src)
}

// Local appends a local computation with declared uses and defs.
func (p *Program) Local(fn LocalFunc, uses []Var, defs []Var) *Stmt {
	return p.add(&Stmt{Kind: KindLocal, Fn: fn, Reads: uses, Writes: defs})
}

func refFromParams(class string, params []string) RefFunc {
	return func(e *Env) store.ObjectID {
		keys := make([]any, len(params))
		for i, p := range params {
			keys[i] = e.Param(p)
		}
		return store.ID(class, keys...)
	}
}

// Validate checks the variable discipline: every variable a statement uses
// must be defined by an earlier statement, Local statements must have a
// function, object statements must have a Ref, and defined variables must be
// named. It returns the first violation found.
func (p *Program) Validate() error {
	defined := make(map[Var]bool)
	for _, s := range p.Stmts {
		switch s.Kind {
		case KindRead, KindWrite:
			if s.Ref == nil {
				return fmt.Errorf("txir: %s: statement %d has no Ref", p.Name, s.Index)
			}
			if s.Class == "" {
				return fmt.Errorf("txir: %s: statement %d has no Class", p.Name, s.Index)
			}
		case KindLocal:
			if s.Fn == nil {
				return fmt.Errorf("txir: %s: statement %d has no Fn", p.Name, s.Index)
			}
		}
		for _, v := range s.UsesVars() {
			if !defined[v] {
				return fmt.Errorf("txir: %s: statement %d uses undefined variable %q", p.Name, s.Index, v)
			}
		}
		for _, v := range s.DefsVars() {
			if v == "" {
				return fmt.Errorf("txir: %s: statement %d defines an unnamed variable", p.Name, s.Index)
			}
			defined[v] = true
		}
	}
	return nil
}

// String renders the program for diagnostics.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s:\n", p.Name)
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}
