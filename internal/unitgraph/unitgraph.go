// Package unitgraph is ACN's static module. It performs the data-flow
// analysis the paper delegates to Soot (§V-C1): from a transaction program
// it derives the UnitGraph (statements + data-dependency edges), identifies
// the remote object accesses that define UnitBlocks, attaches every local
// operation to the latest UnitBlock that accesses a shared object the
// operation manages, and records the dependency model — which UnitBlocks'
// outputs each statement consumes and which statement orderings must be
// preserved by any recomposition.
package unitgraph

import (
	"fmt"
	"sort"
	"strings"

	"qracn/internal/txir"
)

// StmtInfo is the analysis result for one statement.
type StmtInfo struct {
	Stmt *txir.Stmt
	// IsAnchor marks the first access to a shared object: the statement
	// that gives its UnitBlock its remote interaction.
	IsAnchor bool
	// AnchorID is the UnitBlock ID for anchors, -1 otherwise.
	AnchorID int
	// DepAnchors lists the UnitBlocks whose objects this statement manages
	// (values flowing in through variables, plus the block owning the
	// object for re-reads and writes). For attached operations this is the
	// eligible-host set of the run-time re-attachment step; for anchors it
	// is the set of blocks that must execute first.
	DepAnchors []int
	// StaticHost is the UnitBlock hosting this statement in the initial
	// (static) composition: the anchor's own block, or for attached
	// operations the latest block in DepAnchors. It is -1 for floating
	// statements.
	StaticHost int
	// Floating marks a local operation that manages no shared object at
	// all (a pure parameter computation, or a chain over such). Floating
	// statements run at the head of whichever Block executes first and
	// impose no ordering constraints between Blocks, so they never pin an
	// independent segment in place.
	Floating bool
}

// Analysis is the static module's output: the dependency model.
type Analysis struct {
	Program *txir.Program
	Stmts   []StmtInfo
	// NumAnchors is the number of UnitBlocks.
	NumAnchors int
	// AnchorStmt maps UnitBlock ID to the anchor's statement index.
	AnchorStmt []int
	// AnchorClass maps UnitBlock ID to the anchored object's class label.
	AnchorClass []string
	// OrderEdges are statement-index pairs (i, j) meaning i must execute
	// before j under any recomposition (variable RAW/WAR/WAW and
	// object-access ordering).
	OrderEdges [][2]int
}

// Analyze runs the static module over a validated program.
func Analyze(p *txir.Program) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{Program: p, Stmts: make([]StmtInfo, len(p.Stmts))}

	varDef := make(map[txir.Var]int)            // var -> defining stmt
	readersSinceDef := make(map[txir.Var][]int) // var -> readers since last def
	objAnchor := make(map[string]int)           // objKey -> anchor ID
	objLastWriter := make(map[string]int)       // objKey -> last writing stmt
	objReadersSinceWrite := make(map[string][]int)
	edgeSet := make(map[[2]int]bool)
	prevHost := -1

	// A variable defined more than once cannot feed a floating statement:
	// floating statements are hoisted to the front of the sequence, which
	// is only safe when their inputs and outputs are single-assignment.
	defCount := make(map[txir.Var]int)
	for _, s := range p.Stmts {
		for _, v := range s.DefsVars() {
			defCount[v]++
		}
	}

	addEdge := func(i, j int) {
		if i == j || i < 0 {
			return
		}
		e := [2]int{i, j}
		if !edgeSet[e] {
			edgeSet[e] = true
			a.OrderEdges = append(a.OrderEdges, e)
		}
	}

	// depsOf unions the anchor sets reachable through the used variables.
	depsOf := func(s *txir.Stmt) map[int]bool {
		deps := make(map[int]bool)
		for _, v := range s.UsesVars() {
			d := varDef[v] // Validate guarantees presence
			if a.Stmts[d].IsAnchor {
				deps[a.Stmts[d].AnchorID] = true
			} else {
				for _, id := range a.Stmts[d].DepAnchors {
					deps[id] = true
				}
			}
		}
		return deps
	}

	for idx, s := range p.Stmts {
		info := StmtInfo{Stmt: s, AnchorID: -1}
		deps := depsOf(s)

		// Variable-level ordering edges.
		for _, v := range s.UsesVars() {
			addEdge(varDef[v], idx)
		}
		for _, v := range s.DefsVars() {
			if d, ok := varDef[v]; ok {
				addEdge(d, idx) // WAW
				for _, r := range readersSinceDef[v] {
					addEdge(r, idx) // WAR
				}
			}
		}

		key := s.ObjKey()
		isObjectStmt := s.Kind != txir.KindLocal
		if isObjectStmt {
			anchorID, seen := objAnchor[key]
			if !seen {
				// First access: this statement is a UnitBlock anchor.
				info.IsAnchor = true
				info.AnchorID = a.NumAnchors
				info.StaticHost = info.AnchorID
				objAnchor[key] = info.AnchorID
				a.AnchorStmt = append(a.AnchorStmt, idx)
				a.AnchorClass = append(a.AnchorClass, s.Class)
				a.NumAnchors++
			} else {
				deps[anchorID] = true
				addEdge(p.Stmts[a.AnchorStmt[anchorID]].Index, idx)
			}
			// Object-level ordering: writes order against previous readers
			// and the previous writer; reads order against the previous
			// writer (they must observe its buffered value).
			if w, ok := objLastWriter[key]; ok {
				addEdge(w, idx)
			}
			if s.Kind == txir.KindWrite {
				for _, r := range objReadersSinceWrite[key] {
					addEdge(r, idx)
				}
				objLastWriter[key] = idx
				objReadersSinceWrite[key] = nil
			} else {
				objReadersSinceWrite[key] = append(objReadersSinceWrite[key], idx)
			}
		}

		info.DepAnchors = sortedKeys(deps)
		if !info.IsAnchor {
			switch {
			case len(info.DepAnchors) > 0:
				info.StaticHost = info.DepAnchors[len(info.DepAnchors)-1]
			case floatable(a, varDef, defCount, s):
				// A pure parameter computation (or a chain over such):
				// floats to the head of whichever Block runs first.
				info.Floating = true
				info.StaticHost = -1
			case prevHost >= 0:
				// Independent of shared objects but not hoistable (its
				// variables are reassigned): keep it where the programmer
				// put it.
				info.StaticHost = prevHost
				info.DepAnchors = []int{prevHost}
			default:
				// Before the first UnitBlock: attach to block 0 once it
				// exists; resolved in the fix-up pass below.
				info.StaticHost = -1
			}
		}

		// Bookkeeping after computing deps (a statement may read and define
		// the same variable).
		for _, v := range s.UsesVars() {
			readersSinceDef[v] = append(readersSinceDef[v], idx)
		}
		for _, v := range s.DefsVars() {
			varDef[v] = idx
			readersSinceDef[v] = nil
		}

		a.Stmts[idx] = info
		prevHost = info.StaticHost
	}

	if a.NumAnchors == 0 {
		return nil, fmt.Errorf("unitgraph: %s: program has no remote object access", p.Name)
	}
	// Fix up non-floating preamble operations that ran before any UnitBlock
	// existed.
	for i := range a.Stmts {
		if !a.Stmts[i].IsAnchor && !a.Stmts[i].Floating && a.Stmts[i].StaticHost < 0 {
			a.Stmts[i].StaticHost = 0
			a.Stmts[i].DepAnchors = []int{0}
		}
	}
	return a, nil
}

// floatable reports whether a local statement with no shared-object
// dependencies can be hoisted: every variable it uses must come from a
// floating statement and every variable it touches must be assigned exactly
// once in the program.
func floatable(a *Analysis, varDef map[txir.Var]int, defCount map[txir.Var]int, s *txir.Stmt) bool {
	if s.Kind != txir.KindLocal {
		return false
	}
	for _, v := range s.UsesVars() {
		if !a.Stmts[varDef[v]].Floating {
			return false
		}
		if defCount[v] != 1 {
			return false
		}
	}
	for _, v := range s.DefsVars() {
		if defCount[v] != 1 {
			return false
		}
	}
	return true
}

// FloatingStmts returns the indices of floating statements in program order.
func (a *Analysis) FloatingStmts() []int {
	var out []int
	for i := range a.Stmts {
		if a.Stmts[i].Floating {
			out = append(out, i)
		}
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// StaticHosts returns the initial host assignment (statement index →
// UnitBlock ID).
func (a *Analysis) StaticHosts() []int {
	hosts := make([]int, len(a.Stmts))
	for i, s := range a.Stmts {
		hosts[i] = s.StaticHost
	}
	return hosts
}

// BlockMembers groups statement indices by host under a given assignment,
// each group sorted ascending (original execution order within a block).
// Floating statements (host -1) are excluded; compositions prepend them to
// their first Block.
func (a *Analysis) BlockMembers(hosts []int) map[int][]int {
	members := make(map[int][]int, a.NumAnchors)
	for idx, h := range hosts {
		if h < 0 {
			continue
		}
		members[h] = append(members[h], idx)
	}
	for _, m := range members {
		sort.Ints(m)
	}
	return members
}

// BlockEdges translates statement-level ordering constraints into
// UnitBlock-level precedence edges under a host assignment: an edge u→v
// (u ≠ v) means block u must execute before block v. Forced anchor
// dependencies are included.
func (a *Analysis) BlockEdges(hosts []int) map[int]map[int]bool {
	edges := make(map[int]map[int]bool, a.NumAnchors)
	add := func(u, v int) {
		if u == v {
			return
		}
		if edges[u] == nil {
			edges[u] = make(map[int]bool)
		}
		edges[u][v] = true
	}
	for _, e := range a.OrderEdges {
		// Floating statements execute before every Block; edges touching
		// them constrain nothing at Block granularity.
		if a.Stmts[e[0]].Floating || a.Stmts[e[1]].Floating {
			continue
		}
		add(hosts[e[0]], hosts[e[1]])
	}
	for id, stmtIdx := range a.AnchorStmt {
		for _, dep := range a.Stmts[stmtIdx].DepAnchors {
			add(dep, id)
		}
	}
	return edges
}

// SCC computes the strongly connected components of a block-precedence
// graph and returns them in topological order of the condensation (every
// edge between components points from an earlier to a later component).
// Members within a component are sorted ascending. Composition builders use
// it to contract unsatisfiable circular precedence constraints — which the
// static attachment rules can produce when operations on one object spread
// across blocks — into single Blocks, where original program order satisfies
// every constraint.
func SCC(n int, edges map[int]map[int]bool) [][]int {
	// Tarjan's algorithm, iterative bookkeeping kept simple via recursion
	// (block counts are tiny).
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	sortedNeighbors := func(u int) []int {
		out := make([]int, 0, len(edges[u]))
		for v := range edges[u] {
			out = append(out, v)
		}
		sort.Ints(out)
		return out
	}

	var strongconnect func(u int)
	strongconnect = func(u int) {
		index[u] = next
		low[u] = next
		next++
		stack = append(stack, u)
		onStack[u] = true
		for _, v := range sortedNeighbors(u) {
			if index[v] == -1 {
				strongconnect(v)
				if low[v] < low[u] {
					low[u] = low[v]
				}
			} else if onStack[v] && index[v] < low[u] {
				low[u] = index[v]
			}
		}
		if low[u] == index[u] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == u {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for u := 0; u < n; u++ {
		if index[u] == -1 {
			strongconnect(u)
		}
	}

	// Order the condensation topologically, preferring original program
	// order (smallest member first) among ready components, so an
	// unconstrained graph keeps the programmer's sequence.
	compOf := make([]int, n)
	for ci, comp := range comps {
		for _, u := range comp {
			compOf[u] = ci
		}
	}
	indeg := make([]int, len(comps))
	cedges := make([]map[int]bool, len(comps))
	for u, vs := range edges {
		for v := range vs {
			cu, cv := compOf[u], compOf[v]
			if cu == cv {
				continue
			}
			if cedges[cu] == nil {
				cedges[cu] = make(map[int]bool)
			}
			if !cedges[cu][cv] {
				cedges[cu][cv] = true
				indeg[cv]++
			}
		}
	}
	scheduled := make([]bool, len(comps))
	out := make([][]int, 0, len(comps))
	for len(out) < len(comps) {
		best := -1
		for ci := range comps {
			if scheduled[ci] || indeg[ci] > 0 {
				continue
			}
			if best == -1 || comps[ci][0] < comps[best][0] {
				best = ci
			}
		}
		scheduled[best] = true
		out = append(out, comps[best])
		for cv := range cedges[best] {
			indeg[cv]--
		}
	}
	return out
}

// Acyclic reports whether the block-precedence graph has no cycles.
func Acyclic(n int, edges map[int]map[int]bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = gray
		for v := range edges[u] {
			switch color[v] {
			case gray:
				return false
			case white:
				if !visit(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for u := 0; u < n; u++ {
		if color[u] == white && !visit(u) {
			return false
		}
	}
	return true
}

// Dot renders the UnitGraph (statements, data-dependency edges, UnitBlock
// grouping) in Graphviz format for inspection.
func (a *Analysis) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", a.Program.Name)
	members := a.BlockMembers(a.StaticHosts())
	for id := 0; id < a.NumAnchors; id++ {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"UnitBlock %d (%s)\";\n", id, id, a.AnchorClass[id])
		for _, idx := range members[id] {
			fmt.Fprintf(&b, "    s%d [label=%q];\n", idx, a.Stmts[idx].Stmt.String())
		}
		fmt.Fprintf(&b, "  }\n")
	}
	for _, e := range a.OrderEdges {
		fmt.Fprintf(&b, "  s%d -> s%d;\n", e[0], e[1])
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}
