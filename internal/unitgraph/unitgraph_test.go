package unitgraph

import (
	"strings"
	"testing"

	"qracn/internal/store"
	"qracn/internal/txir"
)

func readStmt(p *txir.Program, class string, dst txir.Var) *txir.Stmt {
	return p.Read(class, class, func(*txir.Env) store.ObjectID { return store.ID(class) }, dst)
}

func noop(*txir.Env) error { return nil }

// paperExample builds §V-C1's example transaction:
//
//	{Read(A), Read(B), Read(C), Read(D), var=A+B, var=var/2, Read(E), var2=E+B}
func paperExample() *txir.Program {
	p := txir.NewProgram("paper-example")
	p.Read("A", "A", func(*txir.Env) store.ObjectID { return "A" }, "a") // anchor 0
	p.Read("B", "B", func(*txir.Env) store.ObjectID { return "B" }, "b") // anchor 1
	p.Read("C", "C", func(*txir.Env) store.ObjectID { return "C" }, "c") // anchor 2
	p.Read("D", "D", func(*txir.Env) store.ObjectID { return "D" }, "d") // anchor 3
	p.Local(noop, []txir.Var{"a", "b"}, []txir.Var{"var"})               // stmt 4: var = A+B
	p.Local(noop, []txir.Var{"var"}, []txir.Var{"var"})                  // stmt 5: var = var/2
	p.Read("E", "E", func(*txir.Env) store.ObjectID { return "E" }, "e") // anchor 4
	p.Local(noop, []txir.Var{"e", "b"}, []txir.Var{"var2"})              // stmt 7: var2 = E+B
	return p
}

func TestPaperExampleAttachment(t *testing.T) {
	a, err := Analyze(paperExample())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAnchors != 5 {
		t.Fatalf("NumAnchors = %d, want 5", a.NumAnchors)
	}
	// var = A+B attaches to Read(B)'s UnitBlock (the latest access to an
	// object it manages).
	if got := a.Stmts[4].StaticHost; got != 1 {
		t.Fatalf("var=A+B hosted at %d, want 1 (Read(B))", got)
	}
	// var = var/2 has no direct shared-object access; it follows the chain
	// through var=A+B into the same UnitBlock.
	if got := a.Stmts[5].StaticHost; got != 1 {
		t.Fatalf("var=var/2 hosted at %d, want 1", got)
	}
	// var2 = E+B attaches to Read(E)'s UnitBlock.
	if got := a.Stmts[7].StaticHost; got != 4 {
		t.Fatalf("var2=E+B hosted at %d, want 4 (Read(E))", got)
	}
	// Eligible hosts of var=A+B are the UnitBlocks of A and B.
	if got := a.Stmts[4].DepAnchors; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("DepAnchors(var=A+B) = %v, want [0 1]", got)
	}
	// var=var/2 inherits A and B transitively.
	if got := a.Stmts[5].DepAnchors; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("DepAnchors(var=var/2) = %v, want [0 1]", got)
	}
	// var2=E+B depends on blocks of B and E.
	if got := a.Stmts[7].DepAnchors; len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("DepAnchors(var2) = %v, want [1 4]", got)
	}
}

func TestWriteAfterReadAttaches(t *testing.T) {
	p := txir.NewProgram("rw")
	readStmt(p, "acct", "v") // anchor 0
	p.Local(noop, []txir.Var{"v"}, []txir.Var{"nv"})
	p.Write("acct", "acct", func(*txir.Env) store.ObjectID { return store.ID("acct") }, "nv")
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAnchors != 1 {
		t.Fatalf("NumAnchors = %d, want 1 (write is not a first access)", a.NumAnchors)
	}
	if a.Stmts[2].IsAnchor || a.Stmts[2].StaticHost != 0 {
		t.Fatalf("write should attach to the read's UnitBlock: %+v", a.Stmts[2])
	}
}

func TestWriteFirstIsAnchor(t *testing.T) {
	p := txir.NewProgram("insert")
	readStmt(p, "seq", "n") // anchor 0
	p.Local(noop, []txir.Var{"n"}, []txir.Var{"row"})
	p.Write("order", "n", func(e *txir.Env) store.ObjectID {
		return store.ID("order", e.GetInt64("n"))
	}, "row", "n") // anchor 1 (fresh object)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAnchors != 2 {
		t.Fatalf("NumAnchors = %d, want 2", a.NumAnchors)
	}
	if !a.Stmts[2].IsAnchor {
		t.Fatal("first write to a fresh object must anchor a UnitBlock")
	}
	// The insert depends on the sequence read (RefVars + Src flow).
	if got := a.Stmts[2].DepAnchors; len(got) != 1 || got[0] != 0 {
		t.Fatalf("DepAnchors = %v, want [0]", got)
	}
}

func TestRereadAttachesToOwningBlock(t *testing.T) {
	p := txir.NewProgram("reread")
	readStmt(p, "x", "v1")                                                          // anchor 0
	readStmt(p, "y", "v2")                                                          // anchor 1
	p.Read("x", "x", func(*txir.Env) store.ObjectID { return store.ID("x") }, "v3") // re-read of x
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAnchors != 2 {
		t.Fatalf("NumAnchors = %d, want 2", a.NumAnchors)
	}
	info := a.Stmts[2]
	if info.IsAnchor {
		t.Fatal("re-read must not anchor a new UnitBlock")
	}
	if len(info.DepAnchors) != 1 || info.DepAnchors[0] != 0 {
		t.Fatalf("re-read DepAnchors = %v, want [0]", info.DepAnchors)
	}
}

func TestOrderEdgesVarAndObject(t *testing.T) {
	p := txir.NewProgram("edges")
	readStmt(p, "o", "v")                                                           // 0: anchor
	p.Local(noop, []txir.Var{"v"}, []txir.Var{"w"})                                 // 1: RAW on v
	p.Write("o", "o", func(*txir.Env) store.ObjectID { return store.ID("o") }, "w") // 2: object write
	p.Read("o", "o", func(*txir.Env) store.ObjectID { return store.ID("o") }, "v2") // 3: must see the buffered write
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]bool{
		{0, 1}: true, // v defined by 0, read by 1
		{1, 2}: true, // w defined by 1, read by 2
		{0, 2}: true, // object ordering: read before write
		{2, 3}: true, // re-read must follow the write
	}
	got := map[[2]int]bool{}
	for _, e := range a.OrderEdges {
		got[e] = true
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("missing order edge %v in %v", e, a.OrderEdges)
		}
	}
}

func TestWARAndWAWEdges(t *testing.T) {
	p := txir.NewProgram("war")
	readStmt(p, "o", "v")                           // 0
	p.Local(noop, []txir.Var{"v"}, []txir.Var{"x"}) // 1: def x
	p.Local(noop, []txir.Var{"x"}, []txir.Var{"y"}) // 2: read x
	p.Local(noop, []txir.Var{"v"}, []txir.Var{"x"}) // 3: redef x (WAW vs 1, WAR vs 2)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]bool{}
	for _, e := range a.OrderEdges {
		got[e] = true
	}
	if !got[[2]int{1, 3}] {
		t.Fatalf("missing WAW edge 1->3 in %v", a.OrderEdges)
	}
	if !got[[2]int{2, 3}] {
		t.Fatalf("missing WAR edge 2->3 in %v", a.OrderEdges)
	}
}

func TestNoAnchorsRejected(t *testing.T) {
	p := txir.NewProgram("pure-local")
	p.Local(noop, nil, []txir.Var{"x"})
	if _, err := Analyze(p); err == nil || !strings.Contains(err.Error(), "no remote object access") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	p := txir.NewProgram("invalid")
	p.Local(noop, []txir.Var{"never-defined"}, []txir.Var{"x"})
	if _, err := Analyze(p); err == nil {
		t.Fatal("Analyze accepted an invalid program")
	}
}

func TestParamOnlyLocalsFloat(t *testing.T) {
	p := txir.NewProgram("preamble")
	p.Local(noop, nil, []txir.Var{"amt"})             // pure parameter setup
	p.Local(noop, []txir.Var{"amt"}, []txir.Var{"k"}) // chain over a float
	readStmt(p, "o", "v")
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Stmts[0].Floating || !a.Stmts[1].Floating {
		t.Fatalf("parameter computations should float: %+v %+v", a.Stmts[0], a.Stmts[1])
	}
	if got := a.FloatingStmts(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("FloatingStmts = %v", got)
	}
	// Floating statements impose no block-level constraints.
	if edges := a.BlockEdges(a.StaticHosts()); len(edges) != 0 {
		t.Fatalf("floating statements leaked block edges: %v", edges)
	}
}

func TestReassignedVarsDoNotFloat(t *testing.T) {
	p := txir.NewProgram("reassigned")
	readStmt(p, "o", "v")               // anchor 0
	p.Local(noop, nil, []txir.Var{"k"}) // k defined...
	readStmt(p, "q", "w")               // anchor 1
	p.Local(noop, nil, []txir.Var{"k"}) // ...and reassigned: hoisting unsafe
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stmts[1].Floating || a.Stmts[3].Floating {
		t.Fatal("reassigned-variable locals must not float")
	}
	// They stay where the programmer put them.
	if a.Stmts[1].StaticHost != 0 || a.Stmts[3].StaticHost != 1 {
		t.Fatalf("hosts = %d, %d; want 0, 1", a.Stmts[1].StaticHost, a.Stmts[3].StaticHost)
	}
}

func TestBlockMembersAndEdges(t *testing.T) {
	a, err := Analyze(paperExample())
	if err != nil {
		t.Fatal(err)
	}
	hosts := a.StaticHosts()
	members := a.BlockMembers(hosts)
	if got := members[1]; len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("block 1 members = %v, want [1 4 5]", got)
	}
	edges := a.BlockEdges(hosts)
	// var=A+B lives in block 1 and reads block 0's output: edge 0 -> 1.
	if !edges[0][1] {
		t.Fatalf("missing block edge 0->1: %v", edges)
	}
	// var2 in block 4 reads b from block 1: edge 1 -> 4.
	if !edges[1][4] {
		t.Fatalf("missing block edge 1->4: %v", edges)
	}
}

func TestAcyclic(t *testing.T) {
	edges := map[int]map[int]bool{0: {1: true}, 1: {2: true}}
	if !Acyclic(3, edges) {
		t.Fatal("acyclic graph reported cyclic")
	}
	edges[2] = map[int]bool{0: true}
	if Acyclic(3, edges) {
		t.Fatal("cycle not detected")
	}
	if !Acyclic(0, nil) {
		t.Fatal("empty graph should be acyclic")
	}
}

func TestDotRendering(t *testing.T) {
	a, err := Analyze(paperExample())
	if err != nil {
		t.Fatal(err)
	}
	dot := a.Dot()
	for _, want := range []string{"digraph", "cluster_0", "UnitBlock 4", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot() missing %q:\n%s", want, dot)
		}
	}
}
