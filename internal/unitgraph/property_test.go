package unitgraph_test

import (
	"math/rand"
	"testing"

	"qracn/internal/txir/txirtest"
	"qracn/internal/unitgraph"
)

// TestAnalysisInvariantsOnRandomPrograms checks the structural guarantees
// every consumer of the dependency model relies on, across random valid
// programs.
func TestAnalysisInvariantsOnRandomPrograms(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		prog := txirtest.RandomProgram(rng, 5, 12)
		an, err := unitgraph.Analyze(prog)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, prog)
		}
		if an.NumAnchors < 1 {
			t.Fatalf("trial %d: no anchors", trial)
		}
		if len(an.AnchorStmt) != an.NumAnchors || len(an.AnchorClass) != an.NumAnchors {
			t.Fatalf("trial %d: anchor table sizes inconsistent", trial)
		}
		anchorSeen := map[int]bool{}
		for idx, info := range an.Stmts {
			if info.Stmt != prog.Stmts[idx] {
				t.Fatalf("trial %d: stmt table misaligned at %d", trial, idx)
			}
			switch {
			case info.IsAnchor:
				if info.AnchorID < 0 || info.AnchorID >= an.NumAnchors {
					t.Fatalf("trial %d: anchor id %d out of range", trial, info.AnchorID)
				}
				if anchorSeen[info.AnchorID] {
					t.Fatalf("trial %d: duplicate anchor id %d", trial, info.AnchorID)
				}
				anchorSeen[info.AnchorID] = true
				if an.AnchorStmt[info.AnchorID] != idx {
					t.Fatalf("trial %d: AnchorStmt mismatch", trial)
				}
				if info.StaticHost != info.AnchorID {
					t.Fatalf("trial %d: anchor hosted away from itself", trial)
				}
			case info.Floating:
				if info.StaticHost != -1 || len(info.DepAnchors) != 0 {
					t.Fatalf("trial %d: floating stmt with host/deps: %+v", trial, info)
				}
			default:
				if info.StaticHost < 0 || info.StaticHost >= an.NumAnchors {
					t.Fatalf("trial %d: op host %d out of range", trial, info.StaticHost)
				}
				hostEligible := len(info.DepAnchors) == 0
				for _, d := range info.DepAnchors {
					if d < 0 || d >= an.NumAnchors {
						t.Fatalf("trial %d: dep %d out of range", trial, d)
					}
					if d == info.StaticHost {
						hostEligible = true
					}
				}
				if !hostEligible {
					t.Fatalf("trial %d: static host %d not among eligible %v",
						trial, info.StaticHost, info.DepAnchors)
				}
			}
		}
		// Order edges connect distinct existing statements, def before use
		// in program order.
		for _, e := range an.OrderEdges {
			if e[0] < 0 || e[1] < 0 || e[0] >= len(an.Stmts) || e[1] >= len(an.Stmts) {
				t.Fatalf("trial %d: edge %v out of range", trial, e)
			}
			if e[0] >= e[1] {
				t.Fatalf("trial %d: edge %v not program-order forward", trial, e)
			}
		}
		// The SCC contraction of the static block graph must be a valid
		// topological partition covering every anchor exactly once.
		hosts := an.StaticHosts()
		groups := unitgraph.SCC(an.NumAnchors, an.BlockEdges(hosts))
		pos := map[int]int{}
		for gi, g := range groups {
			for _, a := range g {
				if _, dup := pos[a]; dup {
					t.Fatalf("trial %d: anchor %d in two components", trial, a)
				}
				pos[a] = gi
			}
		}
		if len(pos) != an.NumAnchors {
			t.Fatalf("trial %d: SCC covered %d of %d anchors", trial, len(pos), an.NumAnchors)
		}
		for u, vs := range an.BlockEdges(hosts) {
			for v := range vs {
				if pos[u] > pos[v] {
					t.Fatalf("trial %d: condensation order violated: %d->%d at %d>%d",
						trial, u, v, pos[u], pos[v])
				}
			}
		}
	}
}

func TestSCCBasics(t *testing.T) {
	// 0 -> 1 <-> 2 -> 3, 4 isolated.
	edges := map[int]map[int]bool{
		0: {1: true},
		1: {2: true},
		2: {1: true, 3: true},
	}
	got := unitgraph.SCC(5, edges)
	want := [][]int{{0}, {1, 2}, {3}, {4}}
	if len(got) != len(want) {
		t.Fatalf("SCC = %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("SCC = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("SCC = %v, want %v", got, want)
			}
		}
	}
}

func TestSCCKeepsProgramOrderWhenUnconstrained(t *testing.T) {
	got := unitgraph.SCC(4, nil)
	for i, comp := range got {
		if len(comp) != 1 || comp[0] != i {
			t.Fatalf("SCC over empty graph = %v, want identity order", got)
		}
	}
}

func TestSCCWholeCycle(t *testing.T) {
	edges := map[int]map[int]bool{
		0: {1: true}, 1: {2: true}, 2: {0: true},
	}
	got := unitgraph.SCC(3, edges)
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("SCC = %v, want one component of 3", got)
	}
}
