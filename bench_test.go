// Benchmarks regenerating the paper's evaluation. One benchmark per panel
// of Figure 4 runs the full three-system comparison at a reduced scale and
// reports each system's mean throughput as custom metrics, so the paper's
// "who wins and by how much" is visible straight from `go test -bench`.
// Microbenchmarks below cover the protocol layers and the ablations called
// out in DESIGN.md (algorithm-module cost, nesting overhead, step
// disabling, compression).
package qracn_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"qracn"

	"qracn/internal/acn"
	"qracn/internal/cluster"
	"qracn/internal/dtm"
	"qracn/internal/harness"
	"qracn/internal/model"
	"qracn/internal/store"
	"qracn/internal/txir"
	"qracn/internal/unitgraph"
	"qracn/internal/wire"
	"qracn/internal/workload/bank"
)

// benchScale shrinks the default experiment so one benchmark iteration
// stays in the seconds range.
func benchScale() qracn.FigureScale {
	s := qracn.DefaultScale()
	s.IntervalLength = 150 * time.Millisecond
	s.Clients = 4
	s.ThreadsPerClient = 2
	return s
}

func benchFigure(b *testing.B, id string) {
	fig, ok := qracn.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := qracn.RunExperiment(ctx, fig.Options(benchScale()), qracn.AllModes)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range qracn.AllModes {
			s := res.Series[m]
			var mean float64
			for _, tp := range s.Throughput {
				mean += tp
			}
			mean /= float64(len(s.Throughput))
			b.ReportMetric(mean, m.String()+"-tx/s")
		}
		b.ReportMetric(res.SteadyImprovement(qracn.QRACN, qracn.QRDTM), "ACNvsDTM-%")
		b.ReportMetric(res.SteadyImprovement(qracn.QRACN, qracn.QRCN), "ACNvsCN-%")
	}
}

// Figure 4 panels (see DESIGN.md's per-experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers at full scale).

func BenchmarkFig4a_TPCCNewOrder(b *testing.B) { benchFigure(b, "4a") }
func BenchmarkFig4b_TPCCPayment(b *testing.B)  { benchFigure(b, "4b") }
func BenchmarkFig4c_TPCCMixed(b *testing.B)    { benchFigure(b, "4c") }
func BenchmarkFig4d_TPCCDelivery(b *testing.B) { benchFigure(b, "4d") }
func BenchmarkFig4e_Vacation(b *testing.B)     { benchFigure(b, "4e") }
func BenchmarkFig4f_Bank(b *testing.B)         { benchFigure(b, "4f") }

// --- Protocol microbenchmarks -------------------------------------------

func benchCluster(b *testing.B) (*cluster.Cluster, *dtm.Runtime) {
	b.Helper()
	c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
	b.Cleanup(c.Close)
	objs := map[store.ObjectID]store.Value{}
	for i := 0; i < 1024; i++ {
		objs[store.ID("obj", i)] = store.Int64(0)
	}
	c.Seed(objs)
	return c, c.Runtime(1, dtm.Config{Seed: 1})
}

// BenchmarkQuorumRead measures one read-only transaction: a single quorum
// read plus read-quorum validation.
func BenchmarkQuorumRead(b *testing.B) {
	_, rt := benchCluster(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := store.ID("obj", i%1024)
		if err := rt.Atomic(ctx, func(tx *dtm.Tx) error {
			_, err := tx.Read(id)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommit measures an uncontended read-modify-write transaction:
// quorum read + two-phase commit over the write quorum.
func BenchmarkCommit(b *testing.B) {
	_, rt := benchCluster(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := store.ID("obj", i%1024)
		if err := rt.Atomic(ctx, func(tx *dtm.Tx) error {
			v, err := tx.Read(id)
			if err != nil {
				return err
			}
			return tx.Write(id, store.Int64(store.AsInt64(v)+1))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorNestingOverhead compares flat execution with the finest
// closed-nesting decomposition on an uncontended transfer: the pure cost of
// sub-transaction contexts and merging (the overhead bounded by Fig. 4(d)).
func BenchmarkExecutorNestingOverhead(b *testing.B) {
	prog := bank.TransferProgram()
	an, err := unitgraph.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		comp func() *acn.Composition
	}{
		{"flat", func() *acn.Composition { return acn.Flat(an) }},
		{"nested", func() *acn.Composition { return acn.Static(an) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
			defer c.Close()
			c.Seed(bank.New(bank.Config{Branches: 8, Accounts: 64}).SeedObjects())
			rt := c.Runtime(1, dtm.Config{Seed: 1})
			exec := acn.NewExecutor(rt, an, tc.comp())
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				params := map[string]any{
					"srcBranch": i % 8, "dstBranch": (i + 1) % 8,
					"srcAcct": i % 64, "dstAcct": (i + 1) % 64,
					"amount": 1,
				}
				if err := exec.Execute(ctx, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ACN algorithm-module benchmarks (§V-C3 overhead claim) --------------

// syntheticAnalysis builds a chain-free program with n UnitBlocks and one
// local op per block.
func syntheticAnalysis(b *testing.B, n int) *unitgraph.Analysis {
	b.Helper()
	p := txir.NewProgram(fmt.Sprintf("synthetic-%d", n))
	for i := 0; i < n; i++ {
		cls := fmt.Sprintf("c%d", i)
		dst := txir.Var(fmt.Sprintf("v%d", i))
		out := txir.Var(fmt.Sprintf("o%d", i))
		id := store.ID(cls)
		p.Read(cls, cls, func(*txir.Env) store.ObjectID { return id }, dst)
		p.Local(func(*txir.Env) error { return nil }, []txir.Var{dst}, []txir.Var{out})
	}
	an, err := unitgraph.Analyze(p)
	if err != nil {
		b.Fatal(err)
	}
	return an
}

// BenchmarkAlgorithmModule measures one full three-step recomposition as a
// function of transaction size. The paper argues this cost is negligible
// for realistic transaction sizes; the numbers here substantiate it.
func BenchmarkAlgorithmModule(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			an := syntheticAnalysis(b, n)
			alg := acn.NewAlgorithm(an, acn.AlgoConfig{})
			level := func(id int) float64 { return float64((id * 7) % 13) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alg.Recompose(level)
			}
		})
	}
}

// BenchmarkAlgorithmSteps isolates the three steps for the DESIGN.md
// ablation: each variant disables one step.
func BenchmarkAlgorithmSteps(b *testing.B) {
	an := syntheticAnalysis(b, 16)
	level := func(id int) float64 { return float64((id * 7) % 13) }
	for _, tc := range []struct {
		name string
		cfg  acn.AlgoConfig
	}{
		{"all", acn.AlgoConfig{}},
		{"no-reattach", acn.AlgoConfig{DisableReattach: true}},
		{"no-merge", acn.AlgoConfig{DisableMerge: true}},
		{"no-sort", acn.AlgoConfig{DisableSort: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			alg := acn.NewAlgorithm(an, tc.cfg)
			for i := 0; i < b.N; i++ {
				alg.Recompose(level)
			}
		})
	}
}

// BenchmarkStaticAnalysis measures the static module over the real
// workload programs.
func BenchmarkStaticAnalysis(b *testing.B) {
	prog := bank.TransferProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unitgraph.Analyze(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbortModel measures the analytic model (AbortProb + Combine over
// an 8-block transaction).
func BenchmarkAbortModel(b *testing.B) {
	m := model.DefaultModel()
	probs := make([]float64, 8)
	for i := 0; i < b.N; i++ {
		for j := range probs {
			probs[j] = m.AbortProb(float64(j * 3))
		}
		_ = m.Combine(probs)
	}
}

// --- Wire benchmarks ------------------------------------------------------

func benchEnvelope() *wire.Envelope {
	reads := make([]store.ReadDesc, 32)
	for i := range reads {
		reads[i] = store.ReadDesc{ID: store.ID("warehouse", i), Version: uint64(i)}
	}
	return &wire.Envelope{
		Seq: 7,
		Req: &wire.Request{
			Kind:    wire.KindPrepare,
			TxID:    "c1-t42-a0",
			Prepare: &wire.PrepareRequest{Reads: reads},
		},
	}
}

// BenchmarkWireMarshal measures encoding of a 32-read prepare message under
// both wire codecs: one-shot gob (the oracle) and the appending binary
// encoder (the default).
func BenchmarkWireMarshal(b *testing.B) {
	env := benchEnvelope()
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Marshal(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		var buf []byte
		var err error
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if buf, err = wire.AppendEnvelope(buf[:0], env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFrame compares framing with and without flate compression (the
// paper compresses piggybacked stats to bound their cost).
func BenchmarkFrame(b *testing.B) {
	env := benchEnvelope()
	payload, err := wire.Marshal(env)
	if err != nil {
		b.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "flate"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			buf := make(discard, 0)
			for i := 0; i < b.N; i++ {
				if err := wire.WriteFrame(&buf, payload, compress); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type discard []byte

func (d *discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkMergeThreshold sweeps the step-2 threshold (design-choice
// ablation: how aggressively similar-contention blocks merge).
func BenchmarkMergeThreshold(b *testing.B) {
	an := syntheticAnalysis(b, 16)
	level := func(id int) float64 { return float64(id % 4) }
	for _, th := range []float64{0.05, 0.3, 0.9} {
		b.Run(fmt.Sprintf("th=%.2f", th), func(b *testing.B) {
			alg := acn.NewAlgorithm(an, acn.AlgoConfig{MergeThreshold: th})
			var blocks int
			for i := 0; i < b.N; i++ {
				blocks = alg.Recompose(level).NumBlocks()
			}
			b.ReportMetric(float64(blocks), "blocks")
		})
	}
}

// BenchmarkHarnessSmall measures a complete miniature experiment (all three
// systems) as a smoke benchmark for the harness itself.
func BenchmarkHarnessSmall(b *testing.B) {
	opts := harness.Options{
		Workload:         bank.New(bank.Config{Branches: 8, Accounts: 64}),
		Servers:          4,
		Clients:          2,
		ThreadsPerClient: 1,
		Intervals:        2,
		IntervalLength:   50 * time.Millisecond,
		Seed:             3,
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(ctx, opts, harness.AllModes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointingVsClosedNesting runs the Bank shifting-hot-spot
// experiment with the checkpointing system added — the comparison the paper
// cites from its reference [10] (closed nesting vs checkpointing as partial
// rollback mechanisms).
func BenchmarkCheckpointingVsClosedNesting(b *testing.B) {
	fig, _ := qracn.FigureByID("4f")
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		res, err := qracn.RunExperiment(ctx, fig.Options(benchScale()), qracn.AllModesWithCheckpoint)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range qracn.AllModesWithCheckpoint {
			s := res.Series[m]
			var mean float64
			for _, tp := range s.Throughput {
				mean += tp
			}
			b.ReportMetric(mean/float64(len(s.Throughput)), m.String()+"-tx/s")
		}
	}
}

// BenchmarkTransport compares one uncontended read-modify-write transaction
// over the in-process channel transport and over real loopback TCP, sizing
// the fidelity gap between the simulated and the real network path.
func BenchmarkTransport(b *testing.B) {
	run := func(b *testing.B, rt *dtm.Runtime) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := store.ID("obj", i%64)
			if err := rt.Atomic(ctx, func(tx *dtm.Tx) error {
				v, err := tx.Read(id)
				if err != nil {
					return err
				}
				return tx.Write(id, store.Int64(store.AsInt64(v)+1))
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	seed := func() map[store.ObjectID]store.Value {
		objs := map[store.ObjectID]store.Value{}
		for i := 0; i < 64; i++ {
			objs[store.ID("obj", i)] = store.Int64(0)
		}
		return objs
	}
	b.Run("channel", func(b *testing.B) {
		c := cluster.New(cluster.Config{Servers: 4, StatsWindow: time.Hour})
		defer c.Close()
		c.Seed(seed())
		run(b, c.Runtime(1, dtm.Config{Seed: 1}))
	})
	b.Run("tcp", func(b *testing.B) {
		c, err := cluster.NewTCP(cluster.TCPConfig{Servers: 4, StatsWindow: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		c.Seed(seed())
		run(b, c.Runtime(1, dtm.Config{Seed: 1}))
	})
}

// BenchmarkPrefetchVsSerialReads isolates the read phase of a Bank audit
// transaction (k first-access reads, no writes) on a loopback TCP cluster:
// "serial" pays one quorum round per read, "prefetch" collapses them into a
// single batched round via Tx.Prefetch. The ratio is the round-trip saving
// the batched RPC pipeline buys on real sockets.
func BenchmarkPrefetchVsSerialReads(b *testing.B) {
	const k = 8
	c, err := cluster.NewTCP(cluster.TCPConfig{Servers: 4, StatsWindow: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.Seed(bank.New(bank.Config{Branches: 8, Accounts: 64}).SeedObjects())

	audit := func(rt *dtm.Runtime, base int, prefetch bool) error {
		return rt.Atomic(context.Background(), func(tx *dtm.Tx) error {
			ids := make([]store.ObjectID, k)
			for j := range ids {
				ids[j] = store.ID("account", (base+j)%64)
			}
			if prefetch {
				if err := tx.Prefetch(ids...); err != nil {
					return err
				}
			}
			for _, id := range ids {
				if _, err := tx.Read(id); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for _, tc := range []struct {
		name     string
		prefetch bool
	}{
		{"serial", false},
		{"prefetch", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rt := c.Runtime(1, dtm.Config{Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := audit(rt, i, tc.prefetch); err != nil {
					b.Fatal(err)
				}
			}
			snap := rt.Metrics().Snapshot()
			b.ReportMetric(float64(snap.RemoteReads)/float64(b.N), "rounds/tx")
		})
	}
}

// BenchmarkPrefetchTransferTCP runs the full Bank transfer through the
// executor on TCP with the UnitGraph-driven prefetch on and off — the
// end-to-end (read phase + 2PC) view of the same optimisation.
func BenchmarkPrefetchTransferTCP(b *testing.B) {
	prog := bank.TransferProgram()
	an, err := unitgraph.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		prefetch bool
	}{
		{"serial", false},
		{"prefetch", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c, err := cluster.NewTCP(cluster.TCPConfig{Servers: 4, StatsWindow: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.Seed(bank.New(bank.Config{Branches: 8, Accounts: 64}).SeedObjects())
			rt := c.Runtime(1, dtm.Config{Seed: 1})
			exec := acn.NewExecutor(rt, an, acn.Flat(an))
			exec.SetPrefetch(tc.prefetch)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				params := map[string]any{
					"srcBranch": i % 8, "dstBranch": (i + 1) % 8,
					"srcAcct": i % 64, "dstAcct": (i + 1) % 64,
					"amount": 1,
				}
				if err := exec.Execute(ctx, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadStrategy compares the full and lean quorum-read strategies
// on read-only transactions over large values, where lean's
// versions-only side requests save most of the value bandwidth.
func BenchmarkReadStrategy(b *testing.B) {
	for _, tc := range []struct {
		name     string
		strategy dtm.ReadStrategy
	}{
		{"full", dtm.ReadFull},
		{"lean", dtm.ReadLean},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := cluster.New(cluster.Config{Servers: 10, StatsWindow: time.Hour})
			defer c.Close()
			big := make(store.Bytes, 16<<10)
			objs := map[store.ObjectID]store.Value{}
			for i := 0; i < 64; i++ {
				objs[store.ID("blob", i)] = big
			}
			c.Seed(objs)
			rt := c.Runtime(1, dtm.Config{Seed: 1, ReadStrategy: tc.strategy})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Atomic(ctx, func(tx *dtm.Tx) error {
					_, err := tx.Read(store.ID("blob", i%64))
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
