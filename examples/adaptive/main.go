// Adaptive: watch ACN follow a moving hot spot. The Vacation workload's hot
// table cycles car → flight → room; after every shift the controller
// re-derives the Block sequence and the hot table's UnitBlock migrates
// toward the commit point.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"qracn"
)

func main() {
	c := qracn.NewCluster(qracn.ClusterConfig{
		Servers:     10,
		Network:     qracn.NetworkConfig{Latency: 50 * time.Microsecond, Seed: 1},
		StatsWindow: 150 * time.Millisecond,
	})
	defer c.Close()

	w := qracn.NewVacation(qracn.VacationConfig{Rows: 200, HotRows: 2, QueryPct: 0})
	c.Seed(w.SeedObjects())

	reserve := w.Profiles()[0]
	an, err := qracn.Analyze(reserve.Program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UnitBlocks: 0=car 1=flight 2=room 3=customer")
	fmt.Println("(watch the hot table's block move to the end of the sequence)")
	fmt.Println()

	rt := c.Runtime(1, qracn.RuntimeConfig{Seed: 7})
	exec := qracn.NewExecutor(rt, an, qracn.Static(an))
	ctrl := qracn.NewController(exec, qracn.ControllerConfig{Interval: time.Hour})

	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	tables := []string{"car", "flight", "room"}

	for phase := 0; phase < 3; phase++ {
		// Drive load with this phase's hot table across two stats windows
		// so the servers' contention meters rotate.
		deadline := time.Now().Add(350 * time.Millisecond)
		n := 0
		for time.Now().Before(deadline) {
			_, params := w.Generate(rng, phase)
			if err := exec.Execute(ctx, params); err != nil {
				log.Fatal(err)
			}
			n++
		}
		if err := ctrl.RefreshOnce(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase %d (hot table %-6s): %3d tx -> composition %s\n",
			phase, tables[phase], n, exec.Composition())
	}
}
