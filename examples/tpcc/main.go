// TPC-C: reproduce one panel of the paper's evaluation (default: Figure
// 4(a), 100% NewOrder) through the figure registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"qracn"
)

func main() {
	figID := flag.String("fig", "4a", "figure panel: 4a (NewOrder), 4b (Payment), 4c (mix), 4d (Delivery)")
	flag.Parse()

	fig, ok := qracn.FigureByID(*figID)
	if !ok {
		log.Fatalf("unknown figure %q", *figID)
	}
	fmt.Printf("Figure %s: %s\n", fig.ID, fig.Title)
	fmt.Printf("paper: %s\n\n", fig.Expect)

	res, err := qracn.RunExperiment(context.Background(), fig.Options(qracn.DefaultScale()), qracn.AllModes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Print(res.Summary())
}
