// Faults: watch the quorum protocol ride out node failures. Two leaf nodes
// die mid-run and come back (one via anti-entropy repair); throughput dips
// and recovers, and the final audit shows no money was lost.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qracn"
)

func main() {
	opts := qracn.ExperimentOptions{
		Workload:       qracn.NewBank(qracn.BankConfig{Branches: 20, Accounts: 200}),
		Servers:        10,
		Intervals:      6,
		IntervalLength: 250 * time.Millisecond,
		// Nodes 8 and 9 (leaves of the ternary tree) fail at t2 and return
		// at t5; the protection lease heals anything clients left behind
		// when their in-flight commits lost a participant.
		Faults: []qracn.FaultEvent{
			{Interval: 1, Node: 8, Down: true},
			{Interval: 1, Node: 9, Down: true},
			{Interval: 4, Node: 8, Down: false},
			{Interval: 4, Node: 9, Down: false},
		},
		ProtectTTL: 60 * time.Millisecond,
		Seed:       3,
	}

	fmt.Println("running Bank under QR-DTM with two leaf failures (t2-t4)...")
	res, err := qracn.RunExperiment(context.Background(), opts, []qracn.SystemMode{qracn.QRDTM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()
	s := res.Series[qracn.QRDTM]
	fmt.Printf("commits=%d full-aborts=%d (the cluster kept committing throughout)\n",
		s.Commits, s.Metrics.ParentAborts)
	fmt.Println()
	fmt.Println("note: read quorums route around dead leaves (majority of another")
	fmt.Println("tree level); write quorums need only a majority per level, so two")
	fmt.Println("of six leaves down still leaves 4 >= majority(6).")
}
