// Bank: compare flat nesting (QR-DTM), manual closed nesting (QR-CN), and
// automatic closed nesting (QR-ACN) on the paper's Bank benchmark with a
// mid-run contention shift — a compact version of Figure 4(f).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qracn"
)

func main() {
	opts := qracn.ExperimentOptions{
		Workload: qracn.NewBank(qracn.BankConfig{
			Branches: 50, Accounts: 1000, WritePct: 90,
		}),
		Intervals:      6,
		IntervalLength: 300 * time.Millisecond,
		// Branches are hot first; accounts take over in intervals 2-3.
		PhaseSchedule: []int{0, 1, 1, 0, 0, 0},
		Seed:          1,
	}

	fmt.Println("running Bank under QR-DTM, QR-CN, and QR-ACN (identical schedules)...")
	res, err := qracn.RunExperiment(context.Background(), opts, qracn.AllModes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Print(res.Summary())
}
