package main

import (
	"strings"
	"testing"
)

// TestRun executes the whole example — adaptive run, distributed-trace
// fetch and Chrome export, composition persistence, warm start — and
// checks its milestones appear in the output.
func TestRun(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"trace ring holds",
		"from servers",
		"chrome trace export:",
		"persisted as",
		"warm-started with",
		"(conserved)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
