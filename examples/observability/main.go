// Observability: trace the protocol events behind an adaptive run, persist
// the learned Block sequence, and warm-start a "restarted" client from it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qracn"
)

func main() {
	c := qracn.NewCluster(qracn.ClusterConfig{
		Servers:     10,
		Network:     qracn.NetworkConfig{Latency: 50 * time.Microsecond, Seed: 1},
		StatsWindow: 150 * time.Millisecond,
	})
	defer c.Close()

	w := qracn.NewBank(qracn.BankConfig{Branches: 8, Accounts: 100, HotBranches: 2})
	c.Seed(w.SeedObjects())

	transfer := w.Profiles()[0]
	an, err := qracn.Analyze(transfer.Program)
	if err != nil {
		log.Fatal(err)
	}

	// A tracer on the runtime records reads, aborts, and commits; the
	// controller records every recomposition.
	tracer := qracn.NewTracer(256)
	rt := c.Runtime(1, qracn.RuntimeConfig{Seed: 7, Tracer: tracer})
	exec := qracn.NewExecutor(rt, an, qracn.Static(an))
	ctrl := qracn.NewController(exec, qracn.ControllerConfig{Interval: time.Hour, Tracer: tracer})

	ctx := context.Background()
	params := func(i int) map[string]any {
		return map[string]any{
			"srcBranch": i % 2, "dstBranch": (i + 1) % 2, // hot branches
			"srcAcct": i % 100, "dstAcct": (i + 37) % 100,
			"amount": 1,
		}
	}
	deadline := time.Now().Add(350 * time.Millisecond)
	n := 0
	for time.Now().Before(deadline) {
		if err := exec.Execute(ctx, params(n)); err != nil {
			log.Fatal(err)
		}
		n++
	}
	if err := ctrl.RefreshOnce(ctx); err != nil {
		log.Fatal(err)
	}

	counts := tracer.Count()
	fmt.Printf("ran %d transfers; trace ring holds %d event kinds:\n", n, len(counts))
	for _, k := range []string{"read", "commit", "full-abort", "partial-abort", "busy", "recompose"} {
		for kind, cnt := range counts {
			if kind.String() == k {
				fmt.Printf("  %-14s %d\n", k, cnt)
			}
		}
	}

	// Persist the adapted composition...
	adapted := exec.Composition()
	blob, err := adapted.Encode(an)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadapted composition %s persisted as %d bytes of JSON\n", adapted, len(blob))

	// ...and warm-start a fresh client from it: no monitoring interval
	// needed before it runs the adapted sequence.
	restored, err := qracn.LoadComposition(an, blob)
	if err != nil {
		log.Fatal(err)
	}
	rt2 := c.Runtime(2, qracn.RuntimeConfig{Seed: 8})
	exec2 := qracn.NewExecutor(rt2, an, restored)
	if err := exec2.Execute(ctx, params(0)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted client warm-started with %s\n", exec2.Composition())

	// Typed read-back through the generic helper.
	total, err := qracn.Result(ctx, rt2, func(tx *qracn.Tx) (int64, error) {
		var sum int64
		for i := 0; i < 8; i++ {
			v, err := tx.Read(qracn.ID("branch", i))
			if err != nil {
				return 0, err
			}
			sum += qracn.AsInt64(v)
		}
		return sum, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("branch total after %d transfers: %d (conserved)\n", n+1, total)
}
