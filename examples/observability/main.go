// Observability: trace the protocol events behind an adaptive run, follow
// one transaction's distributed spans across client and servers, persist
// the learned Block sequence, and warm-start a "restarted" client from it.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"qracn"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const servers = 10
	c := qracn.NewCluster(qracn.ClusterConfig{
		Servers:       servers,
		Network:       qracn.NetworkConfig{Latency: 50 * time.Microsecond, Seed: 1},
		StatsWindow:   150 * time.Millisecond,
		TraceCapacity: 4096, // server-side span rings
	})
	defer c.Close()

	w2 := qracn.NewBank(qracn.BankConfig{Branches: 8, Accounts: 100, HotBranches: 2})
	c.Seed(w2.SeedObjects())

	transfer := w2.Profiles()[0]
	an, err := qracn.Analyze(transfer.Program)
	if err != nil {
		return err
	}

	// A tracer on the runtime records protocol events and — because
	// TraceSample is 1 — one span tree per transaction; the controller
	// records every recomposition.
	tracer := qracn.NewTracer(4096)
	rt := c.Runtime(1, qracn.RuntimeConfig{Seed: 7, Tracer: tracer, TraceSample: 1})
	exec := qracn.NewExecutor(rt, an, qracn.Static(an))
	ctrl := qracn.NewController(exec, qracn.ControllerConfig{Interval: time.Hour, Tracer: tracer})

	ctx := context.Background()
	params := func(i int) map[string]any {
		return map[string]any{
			"srcBranch": i % 2, "dstBranch": (i + 1) % 2, // hot branches
			"srcAcct": i % 100, "dstAcct": (i + 37) % 100,
			"amount": 1,
		}
	}
	deadline := time.Now().Add(350 * time.Millisecond)
	n := 0
	for time.Now().Before(deadline) {
		if err := exec.Execute(ctx, params(n)); err != nil {
			return err
		}
		n++
	}
	if err := ctrl.RefreshOnce(ctx); err != nil {
		return err
	}

	counts := tracer.Count()
	fmt.Fprintf(w, "ran %d transfers; trace ring holds %d event kinds:\n", n, len(counts))
	for _, k := range []string{"read", "commit", "full-abort", "partial-abort", "busy", "recompose"} {
		for kind, cnt := range counts {
			if kind.String() == k {
				fmt.Fprintf(w, "  %-14s %d\n", k, cnt)
			}
		}
	}

	// Distributed tracing: pick one transaction, merge the client's spans
	// with the serve spans fetched from every node, and reassemble its
	// cross-node timeline. The same spans export losslessly as Chrome
	// trace_event JSON (chrome://tracing, Perfetto) — qracn-inspect trace
	// renders either form from a live cluster or a JSON file.
	ids := qracn.TraceIDs(tracer.Spans())
	if len(ids) == 0 {
		return fmt.Errorf("no traces recorded")
	}
	var nodes []qracn.NodeID
	for i := 0; i < servers; i++ {
		nodes = append(nodes, qracn.NodeID(i))
	}
	spans, err := rt.FetchSpans(ctx, nodes, ids[0])
	if err != nil {
		return err
	}
	roots := qracn.AssembleTrace(spans, ids[0])
	serverSpans := 0
	for _, s := range spans {
		if s.Site != "client-1" {
			serverSpans++
		}
	}
	fmt.Fprintf(w, "\ntrace %s: %d spans (%d from servers), %d root(s)\n",
		ids[0], len(spans), serverSpans, len(roots))
	chrome, err := qracn.ChromeTrace(spans)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chrome trace export: %d bytes of JSON\n", len(chrome))

	// Persist the adapted composition...
	adapted := exec.Composition()
	blob, err := adapted.Encode(an)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nadapted composition %s persisted as %d bytes of JSON\n", adapted, len(blob))

	// ...and warm-start a fresh client from it: no monitoring interval
	// needed before it runs the adapted sequence.
	restored, err := qracn.LoadComposition(an, blob)
	if err != nil {
		return err
	}
	rt2 := c.Runtime(2, qracn.RuntimeConfig{Seed: 8})
	exec2 := qracn.NewExecutor(rt2, an, restored)
	if err := exec2.Execute(ctx, params(0)); err != nil {
		return err
	}
	fmt.Fprintf(w, "restarted client warm-started with %s\n", exec2.Composition())

	// Typed read-back through the generic helper.
	total, err := qracn.Result(ctx, rt2, func(tx *qracn.Tx) (int64, error) {
		var sum int64
		for i := 0; i < 8; i++ {
			v, err := tx.Read(qracn.ID("branch", i))
			if err != nil {
				return 0, err
			}
			sum += qracn.AsInt64(v)
		}
		return sum, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "branch total after %d transfers: %d (conserved)\n", n+1, total)
	return nil
}
