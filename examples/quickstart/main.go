// Quickstart: deploy an in-process replicated DTM, express a flat
// transaction in the IR, let ACN decompose it, and execute it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qracn"
)

func main() {
	// 1. Deploy ten quorum nodes arranged in a ternary tree, joined by a
	//    simulated LAN.
	c := qracn.NewCluster(qracn.ClusterConfig{
		Servers:     10,
		Network:     qracn.NetworkConfig{Latency: 100 * time.Microsecond, Seed: 1},
		StatsWindow: 200 * time.Millisecond,
	})
	defer c.Close()

	// 2. Seed two shared counters.
	c.Seed(map[qracn.ObjectID]qracn.Value{
		"counter/hot":  qracn.Int64(0),
		"counter/cold": qracn.Int64(0),
	})

	// 3. Write the transaction as flat business logic: read both counters,
	//    combine, write both back. ACN will figure out the decomposition.
	p := qracn.NewProgram("bump-both")
	p.ReadP("counter", "h", "hot")  // UnitBlock 0
	p.ReadP("counter", "c", "cold") // UnitBlock 1
	p.Local(func(e *qracn.Env) error {
		e.SetInt64("nh", e.GetInt64("h")+1)
		e.SetInt64("nc", e.GetInt64("c")+1)
		return nil
	}, []qracn.Var{"h", "c"}, []qracn.Var{"nh", "nc"})
	p.WriteP("counter", "nh", "hot")
	p.WriteP("counter", "nc", "cold")

	// 4. Static module: UnitGraph → UnitBlocks → dependency model.
	an, err := qracn.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis found %d UnitBlocks\n", an.NumAnchors)

	// 5. Execute under automatic closed nesting.
	rt := c.Runtime(1, qracn.RuntimeConfig{Seed: 42})
	exec := qracn.NewExecutor(rt, an, qracn.Static(an))
	ctrl := qracn.NewController(exec, qracn.ControllerConfig{Interval: 200 * time.Millisecond})

	ctx := context.Background()
	params := map[string]any{"hot": "hot", "cold": "cold"}
	for i := 0; i < 50; i++ {
		if err := exec.Execute(ctx, params); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("initial composition: %s\n", exec.Composition())

	// 6. Let the dynamic module observe contention and recompose.
	time.Sleep(250 * time.Millisecond) // one stats window
	for i := 0; i < 10; i++ {
		if err := exec.Execute(ctx, params); err != nil {
			log.Fatal(err)
		}
	}
	if err := ctrl.RefreshOnce(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adapted composition: %s\n", exec.Composition())

	// 7. Read the counters back through a plain transaction.
	if err := rt.Atomic(ctx, func(tx *qracn.Tx) error {
		h, err := tx.Read("counter/hot")
		if err != nil {
			return err
		}
		fmt.Printf("counter/hot = %d after 60 transactions\n", qracn.AsInt64(h))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
