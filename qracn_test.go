package qracn_test

import (
	"context"
	"testing"
	"time"

	"qracn"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: cluster, program, analysis, executor, controller,
// plain transactions.
func TestFacadeEndToEnd(t *testing.T) {
	c := qracn.NewCluster(qracn.ClusterConfig{
		Servers:     10,
		Network:     qracn.NetworkConfig{Seed: 1},
		StatsWindow: 50 * time.Millisecond,
	})
	defer c.Close()
	c.Seed(map[qracn.ObjectID]qracn.Value{
		qracn.ID("counter", "a"): qracn.Int64(0),
		qracn.ID("counter", "b"): qracn.Int64(0),
	})

	p := qracn.NewProgram("bump")
	p.ReadP("counter", "x", "first")
	p.ReadP("counter", "y", "second")
	p.Local(func(e *qracn.Env) error {
		e.SetInt64("nx", e.GetInt64("x")+1)
		e.SetInt64("ny", e.GetInt64("y")+1)
		return nil
	}, []qracn.Var{"x", "y"}, []qracn.Var{"nx", "ny"})
	p.WriteP("counter", "nx", "first")
	p.WriteP("counter", "ny", "second")

	an, err := qracn.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if an.NumAnchors != 2 {
		t.Fatalf("anchors = %d", an.NumAnchors)
	}

	rt := c.Runtime(1, qracn.RuntimeConfig{Seed: 1})
	exec := qracn.NewExecutor(rt, an, qracn.Static(an))
	ctrl := qracn.NewController(exec, qracn.ControllerConfig{Interval: time.Hour})

	ctx := context.Background()
	params := map[string]any{"first": "a", "second": "b"}
	for i := 0; i < 5; i++ {
		if err := exec.Execute(ctx, params); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.RefreshOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if err := exec.Execute(ctx, params); err != nil {
		t.Fatal(err)
	}

	var got int64
	if err := rt.Atomic(ctx, func(tx *qracn.Tx) error {
		v, err := tx.Read(qracn.ID("counter", "a"))
		if err != nil {
			return err
		}
		got = qracn.AsInt64(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("counter a = %d, want 6", got)
	}
}

func TestFacadeCompositions(t *testing.T) {
	p := qracn.NewProgram("p")
	p.ReadP("c", "x", "k1")
	p.ReadP("c", "y", "k2")
	an, err := qracn.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if qracn.Flat(an).NumBlocks() != 1 {
		t.Fatal("Flat should produce one block")
	}
	if qracn.Static(an).NumBlocks() != 2 {
		t.Fatal("Static should produce one block per UnitBlock")
	}
	if _, err := qracn.Manual(an, [][]int{{1}, {0}}); err != nil {
		t.Fatalf("Manual: %v", err)
	}
}

func TestFacadeWorkloadsAndFigures(t *testing.T) {
	if qracn.NewBank(qracn.BankConfig{}).Name() != "bank" {
		t.Fatal("bank")
	}
	if qracn.NewTPCC(qracn.TPCCConfig{MixNewOrder: 100}).Name() != "tpcc" {
		t.Fatal("tpcc")
	}
	if qracn.NewVacation(qracn.VacationConfig{}).Name() != "vacation" {
		t.Fatal("vacation")
	}
	if len(qracn.Figures()) != 6 {
		t.Fatal("figures")
	}
	if _, ok := qracn.FigureByID("4c"); !ok {
		t.Fatal("FigureByID")
	}
	if qracn.DefaultScale().Servers != 10 {
		t.Fatal("scale")
	}
}

func TestFacadeExperiment(t *testing.T) {
	res, err := qracn.RunExperiment(context.Background(), qracn.ExperimentOptions{
		Workload:         qracn.NewBank(qracn.BankConfig{Branches: 4, Accounts: 40}),
		Servers:          4,
		Clients:          2,
		ThreadsPerClient: 1,
		Intervals:        2,
		IntervalLength:   60 * time.Millisecond,
		Seed:             5,
	}, []qracn.SystemMode{qracn.QRDTM, qracn.QRACN})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series[qracn.QRDTM] == nil || res.Series[qracn.QRACN] == nil {
		t.Fatal("missing series")
	}
	if res.Table() == "" || res.Summary() == "" {
		t.Fatal("empty report")
	}
}
