package qracn_test

import (
	"context"
	"fmt"
	"time"

	"qracn"
)

// transferExample is the paper's Fig. 1 Bank transaction: two hot branch
// accesses followed by two cool account accesses.
func transferExample() *qracn.Program {
	p := qracn.NewProgram("transfer")
	p.ReadP("branch", "b1", "src")
	p.ReadP("branch", "b2", "dst")
	p.Local(func(e *qracn.Env) error {
		e.SetInt64("nb1", e.GetInt64("b1")-1)
		e.SetInt64("nb2", e.GetInt64("b2")+1)
		return nil
	}, []qracn.Var{"b1", "b2"}, []qracn.Var{"nb1", "nb2"})
	p.WriteP("branch", "nb1", "src")
	p.WriteP("branch", "nb2", "dst")
	p.ReadP("account", "a1", "srcAcct")
	p.ReadP("account", "a2", "dstAcct")
	return p
}

// ExampleAnalyze shows the static module extracting UnitBlocks from a flat
// transaction.
func ExampleAnalyze() {
	an, err := qracn.Analyze(transferExample())
	if err != nil {
		panic(err)
	}
	fmt.Println("UnitBlocks:", an.NumAnchors)
	fmt.Println("initial sequence:", qracn.Static(an))
	fmt.Println("flat (QR-DTM):", qracn.Flat(an))
	// Output:
	// UnitBlocks: 4
	// initial sequence: [0][1][2][3]
	// flat (QR-DTM): [0 1 2 3]
}

// ExampleManual builds the programmer's QR-CN decomposition and shows that
// dependency-violating decompositions are rejected.
func ExampleManual() {
	an, err := qracn.Analyze(transferExample())
	if err != nil {
		panic(err)
	}
	comp, err := qracn.Manual(an, [][]int{{2}, {3}, {0, 1}})
	if err != nil {
		panic(err)
	}
	fmt.Println("manual:", comp)
	fmt.Println("valid:", qracn.ValidateComposition(an, comp) == nil)
	// Output:
	// manual: [2][3][0 1]
	// valid: true
}

// Example demonstrates the end-to-end flow: deploy a cluster, execute a
// transaction adaptively, read the result back.
func Example() {
	c := qracn.NewCluster(qracn.ClusterConfig{Servers: 10, StatsWindow: time.Hour})
	defer c.Close()
	c.Seed(map[qracn.ObjectID]qracn.Value{
		qracn.ID("branch", 0):  qracn.Int64(100),
		qracn.ID("branch", 1):  qracn.Int64(100),
		qracn.ID("account", 0): qracn.Int64(100),
		qracn.ID("account", 1): qracn.Int64(100),
	})

	an, err := qracn.Analyze(transferExample())
	if err != nil {
		panic(err)
	}
	rt := c.Runtime(1, qracn.RuntimeConfig{Seed: 1})
	exec := qracn.NewExecutor(rt, an, qracn.Static(an))

	ctx := context.Background()
	params := map[string]any{"src": 0, "dst": 1, "srcAcct": 0, "dstAcct": 1}
	for i := 0; i < 3; i++ {
		if err := exec.Execute(ctx, params); err != nil {
			panic(err)
		}
	}

	balance, err := qracn.Result(ctx, rt, func(tx *qracn.Tx) (int64, error) {
		v, err := tx.Read(qracn.ID("branch", 1))
		if err != nil {
			return 0, err
		}
		return qracn.AsInt64(v), nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("branch 1 after 3 transfers:", balance)
	// Output:
	// branch 1 after 3 transfers: 103
}
